// The experiment runtime: sweep determinism, deterministic merging, and
// the suite driver.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "runtime/metrics.h"
#include "runtime/scenario.h"
#include "runtime/suite.h"
#include "runtime/sweep.h"
#include "scenarios/bft_scaling.h"

namespace findep::runtime {
namespace {

/// Cheap deterministic scenario: metrics are pure functions of the seed.
class EchoScenario : public Scenario {
 public:
  std::string name() const override { return "echo/basic"; }
  MetricRecord run(const RunContext& ctx) const override {
    MetricRecord m;
    m.set("seed_lo", static_cast<double>(ctx.seed & 0xffffffff));
    m.set("index", static_cast<double>(ctx.run_index));
    return m;
  }
};

class FailingScenario : public Scenario {
 public:
  std::string name() const override { return "echo/failing"; }
  MetricRecord run(const RunContext& ctx) const override {
    if (ctx.run_index % 2 == 1) throw std::runtime_error("boom");
    MetricRecord m;
    m.set("ok", 1.0);
    return m;
  }
};

TEST(MetricRecord, KeepsInsertionOrderAndOverwrites) {
  MetricRecord m;
  m.set("b", 2.0);
  m.set("a", 1.0);
  m.set("b", 3.0);
  ASSERT_EQ(m.entries().size(), 2u);
  EXPECT_EQ(m.entries()[0].first, "b");
  EXPECT_DOUBLE_EQ(m.get("b"), 3.0);
  EXPECT_TRUE(m.has("a"));
  EXPECT_FALSE(m.has("c"));
}

TEST(DeriveSeed, StableAndCollisionFreeOverSweep) {
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = derive_seed(7, i);
    EXPECT_EQ(s, derive_seed(7, i));  // pure function
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_NE(derive_seed(7, 0), derive_seed(8, 0));
}

TEST(SweepRunner, RecordsIndexedByRunNotCompletion) {
  EchoScenario scenario;
  const SweepRunner runner({.base_seed = 3, .num_seeds = 16, .threads = 8});
  const auto records = runner.run(scenario);
  ASSERT_EQ(records.size(), 16u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].run_index, i);
    EXPECT_EQ(records[i].seed, derive_seed(3, i));
    EXPECT_DOUBLE_EQ(records[i].metrics.get("index"),
                     static_cast<double>(i));
  }
}

// The acceptance contract: a sweep of >= 8 seeds of the BFT scaling
// scenario on >= 4 worker threads produces per-seed metrics bit-identical
// to the serial run (each worker owns its own Simulator + SimNetwork +
// RNG, so thread scheduling cannot leak into results).
TEST(SweepRunner, ParallelBftSweepBitIdenticalToSerial) {
  const scenarios::BftScalingScenario scenario({.n = 4, .requests = 3});
  const auto serial =
      SweepRunner({.base_seed = 42, .num_seeds = 8, .threads = 1})
          .run(scenario);
  const auto parallel =
      SweepRunner({.base_seed = 42, .num_seeds = 8, .threads = 4})
          .run(scenario);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok());
    ASSERT_TRUE(parallel[i].ok());
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    // operator== compares doubles exactly: bit-identical, not "close".
    EXPECT_TRUE(serial[i].metrics == parallel[i].metrics) << "seed index "
                                                          << i;
  }
}

TEST(SweepRunner, IdenticallySeededRunnersAgree) {
  const scenarios::BftScalingScenario scenario({.n = 4, .requests = 2});
  const SweepOptions options{.base_seed = 9, .num_seeds = 4, .threads = 4};
  const auto a = SweepRunner(options).run(scenario);
  const auto b = SweepRunner(options).run(scenario);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].metrics == b[i].metrics);
  }
}

TEST(SweepRunner, CapturesPerRunErrorsWithoutAbortingSweep) {
  FailingScenario scenario;
  const auto records =
      SweepRunner({.base_seed = 1, .num_seeds = 4, .threads = 2})
          .run(scenario);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_TRUE(records[0].ok());
  EXPECT_FALSE(records[1].ok());
  EXPECT_EQ(records[1].error, "boom");
  EXPECT_TRUE(records[2].ok());
}

TEST(MetricsSink, SortsRecordsBySeedNotArrivalOrder) {
  MetricsSink sink;
  std::vector<RunRecord> records(3);
  records[0].seed = 900;
  records[1].seed = 1;
  records[2].seed = 50;
  sink.add("s", "f", records);
  const auto& stored = sink.entries().front().records;
  EXPECT_EQ(stored[0].seed, 1u);
  EXPECT_EQ(stored[1].seed, 50u);
  EXPECT_EQ(stored[2].seed, 900u);
}

TEST(MetricsSink, JsonIdenticalForSerialAndParallelSweeps) {
  EchoScenario scenario;
  const auto render = [&](std::size_t threads) {
    MetricsSink sink;
    sink.add(scenario.name(), scenario.family(),
             SweepRunner({.base_seed = 5, .num_seeds = 8, .threads = threads})
                 .run(scenario));
    std::ostringstream out;
    sink.print_json(out);
    return out.str();
  };
  EXPECT_EQ(render(1), render(4));
}

TEST(MetricsSink, TableGroupsByFamily) {
  MetricsSink sink;
  RunRecord r;
  r.seed = 1;
  r.metrics.set("x", 1.5);
  sink.add("fam/a", "fam", {r});
  sink.add("fam/b", "fam", {r});
  std::ostringstream out;
  sink.print_tables(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("fam/a"), std::string::npos);
  EXPECT_NE(text.find("fam/b"), std::string::npos);
  EXPECT_NE(text.find("x"), std::string::npos);
}

TEST(Suite, ParsesUniformFlags) {
  const char* argv[] = {"prog", "--seed", "77", "--seeds", "5",
                        "--threads", "2", "--only", "bft", "--json"};
  SuiteOptions options;
  std::ostringstream err;
  ASSERT_TRUE(parse_suite_options(10, argv, options, err));
  EXPECT_EQ(options.sweep.base_seed, 77u);
  EXPECT_EQ(options.sweep.num_seeds, 5u);
  EXPECT_EQ(options.sweep.threads, 2u);
  EXPECT_EQ(options.only, "bft");
  EXPECT_TRUE(options.json);
  EXPECT_FALSE(options.csv);
}

TEST(Suite, RejectsUnknownOrTruncatedFlags) {
  SuiteOptions options;
  std::ostringstream err;
  const char* bad[] = {"prog", "--frobnicate"};
  EXPECT_FALSE(parse_suite_options(2, bad, options, err));
  const char* truncated[] = {"prog", "--seeds"};
  EXPECT_FALSE(parse_suite_options(2, truncated, options, err));
}

TEST(Suite, RunsMatchingScenariosAndReportsErrors) {
  ScenarioSuite suite("test suite");
  suite.emplace<EchoScenario>();
  suite.emplace<FailingScenario>();
  SuiteOptions options;
  options.sweep = {.base_seed = 1, .num_seeds = 2, .threads = 1};

  std::ostringstream out, err;
  options.only = "basic";
  EXPECT_EQ(suite.run(options, out, err), 0);
  EXPECT_NE(out.str().find("echo"), std::string::npos);
  EXPECT_EQ(out.str().find("failing"), std::string::npos);

  std::ostringstream out2, err2;
  options.only = "failing";
  EXPECT_EQ(suite.run(options, out2, err2), 1);
  EXPECT_NE(err2.str().find("boom"), std::string::npos);
}

}  // namespace
}  // namespace findep::runtime
