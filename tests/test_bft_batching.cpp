// Request batching: the Batch payload, the size-aware wire model, the
// primary's cut policy (size / timeout), latency semantics at request
// granularity, and the headline amortization property — batch_size = 8
// commits the same requests with >= 4x fewer protocol messages per
// committed request than batch_size = 1.
#include <gtest/gtest.h>

#include <set>

#include "bft/cluster.h"
#include "scenarios/bft_scaling.h"
#include "support/assert.h"

namespace findep::bft {
namespace {

ClusterOptions fast_options(std::uint64_t seed = 1) {
  ClusterOptions opt;
  opt.network.min_latency = 0.005;
  opt.network.mean_extra_latency = 0.01;
  opt.replica.request_timeout = 0.8;
  opt.replica.view_change_timeout = 1.2;
  opt.seed = seed;
  return opt;
}

Request make_request(std::uint64_t id) {
  return Request{id, crypto::Sha256{}.update_u64(id).finish()};
}

std::set<std::uint64_t> executed_ids(const Replica& replica) {
  std::set<std::uint64_t> ids;
  for (const ExecutedEntry& e : replica.executed()) {
    if (e.request.id != 0) ids.insert(e.request.id);
  }
  return ids;
}

TEST(BftBatch, DigestCommitsToContentOrderAndCount) {
  const Request a = make_request(1);
  const Request b = make_request(2);
  const Batch ab{{a, b}};
  const Batch ba{{b, a}};
  const Batch a_only{{a}};
  const Batch aa{{a, a}};
  EXPECT_EQ(ab.digest(), (Batch{{a, b}}.digest()));
  EXPECT_NE(ab.digest(), ba.digest());
  EXPECT_NE(ab.digest(), a_only.digest());
  EXPECT_NE(a_only.digest(), aa.digest());
  EXPECT_NE(Batch{}.digest(), a_only.digest());
}

TEST(BftBatch, WireBytesScaleWithBatchAndPreparedEntries) {
  const Request r = make_request(7);
  // A single-request batch costs exactly what the unbatched protocol
  // charged for a pre-prepare (512), so batch_size=1 accounting is
  // byte-identical to the historical flat model.
  EXPECT_EQ(payload_wire_bytes(Payload{PrePrepare{0, 1, Batch{{r}}}}), 512u);
  EXPECT_EQ(payload_wire_bytes(Payload{r}), 512u);
  EXPECT_EQ(payload_wire_bytes(Payload{Prepare{}}), 192u);
  EXPECT_EQ(payload_wire_bytes(Payload{Commit{}}), 192u);
  EXPECT_EQ(payload_wire_bytes(Payload{Checkpoint{}}), 192u);
  // Batched requests share the header: 3 requests cost 192 + 3*320, far
  // below 3 separate pre-prepares.
  const Batch three{{make_request(1), make_request(2), make_request(3)}};
  EXPECT_EQ(payload_wire_bytes(Payload{PrePrepare{0, 1, three}}),
            192u + 3u * 320u);
  // View changes are flat while empty and grow with carried batches —
  // the under-reporting fix for variable-length payloads.
  ViewChange vc;
  vc.new_view = 1;
  EXPECT_EQ(payload_wire_bytes(Payload{vc}), 1024u);
  vc.prepared.push_back(PreparedEntry{0, 1, three});
  EXPECT_EQ(payload_wire_bytes(Payload{vc}), 1024u + 48u + 3u * 320u);
}

TEST(BftBatch, FullBatchesCommitAndUnrollPerRequest) {
  ClusterOptions opt = fast_options(41);
  opt.replica.batch_size = 4;
  // Cut on size only: 8 requests = exactly two full batches. The batch
  // timer must stay below request_timeout (enforced at construction), so
  // the timeout-free regime is modeled with a slow timer under a slower
  // request timer.
  opt.replica.batch_timeout = 5.0;
  opt.replica.request_timeout = 8.0;
  BftCluster cluster(4, opt);
  for (int i = 0; i < 8; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(8, 60.0));
  EXPECT_TRUE(cluster.logs_consistent());
  // 8 requests in 4-request batches: the log unrolls each batch into
  // per-request entries that share the batch's slot seq.
  const auto& log = cluster.replica(1).executed();
  ASSERT_EQ(log.size(), 8u);
  std::set<std::uint64_t> seqs;
  for (const ExecutedEntry& e : log) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), 2u);  // two consensus instances
  EXPECT_EQ(executed_ids(cluster.replica(1)),
            (std::set<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(BftBatch, PartialBatchIsCutByTimeout) {
  // 3 requests against batch_size = 8: nothing ever fills the batch, so
  // the timeout must cut a partial batch (light-load liveness).
  ClusterOptions opt = fast_options(42);
  opt.replica.batch_size = 8;
  opt.replica.batch_timeout = 0.05;
  BftCluster cluster(4, opt);
  for (int i = 0; i < 3; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(3, 30.0));
  EXPECT_TRUE(cluster.logs_consistent());
  // No view change was needed: the batch timer, not the request timer,
  // drove the proposal.
  EXPECT_EQ(cluster.replica(1).view(), 0u);
}

TEST(BftBatch, LatencyTracksRequestsNotBatches) {
  // Requests trickling in one per 100 ms with batch_size = 2: each
  // request's trace must complete at its own first honest execution.
  ClusterOptions opt = fast_options(43);
  opt.replica.batch_size = 2;
  opt.replica.batch_timeout = 0.04;
  BftCluster cluster(4, opt);
  for (int i = 0; i < 4; ++i) {
    cluster.submit();
    cluster.run_for(0.1);
  }
  EXPECT_TRUE(cluster.run_until_executed(4, 30.0));
  for (const RequestTrace& t : cluster.traces()) {
    ASSERT_TRUE(t.done());
    EXPECT_GT(t.latency(), 0.0);
    // Submissions were 100 ms apart and batches cut within 40 ms, so no
    // request can have waited for a whole later arrival wave.
    EXPECT_LT(t.latency(), 0.5);
  }
}

TEST(BftBatch, BatchSizeEightAmortizesFourfold) {
  // The PR acceptance property, asserted through the scenario metric:
  // same cluster, same 16 requests, same seed — batch_size = 8 must
  // commit them with >= 4x fewer protocol messages per committed request
  // than batch_size = 1.
  using scenarios::BftScalingScenario;
  const auto metrics_for = [](std::size_t batch_size) {
    BftScalingScenario::Params params;
    params.n = 10;
    params.requests = 16;
    params.batch_size = batch_size;
    // Cut by size, not timer (16 = 2 full batches of 8): all requests
    // arrive within ~50 ms of t = 0, far under this timer, so the batch
    // count — and therefore this assertion — stays deterministic. (The
    // timer must also stay below the 1 s request_timeout, enforced at
    // construction.)
    params.batch_timeout = 0.9;
    const BftScalingScenario scenario(params);
    return scenario.run(runtime::RunContext{.seed = 77, .run_index = 0});
  };
  const runtime::MetricRecord unbatched = metrics_for(1);
  const runtime::MetricRecord batched = metrics_for(8);
  ASSERT_EQ(unbatched.get("completed"), 1.0);
  ASSERT_EQ(batched.get("completed"), 1.0);
  const double ratio = unbatched.get("msgs_per_committed_request") /
                       batched.get("msgs_per_committed_request");
  EXPECT_GE(ratio, 4.0) << "unbatched " << unbatched.get(
                               "msgs_per_committed_request")
                        << " vs batched "
                        << batched.get("msgs_per_committed_request");
  // Fewer messages must not mean fewer commits: both runs committed all
  // 16 requests (completed == 1 asserts the full target was reached).
  EXPECT_EQ(unbatched.get("requests_per_second") > 0.0, true);
  EXPECT_EQ(batched.get("requests_per_second") > 0.0, true);
}

TEST(BftBatch, SameRequestsCommittedAcrossBatchSizes) {
  // Cluster-level twin of the amortization test: identical submissions,
  // identical executed id sets, batching only changes the grouping.
  const auto ids_for = [](std::size_t batch_size) {
    ClusterOptions opt = fast_options(44);
    opt.replica.batch_size = batch_size;
    opt.replica.batch_timeout = 5.0;
    opt.replica.request_timeout = 8.0;
    BftCluster cluster(4, opt);
    for (int i = 0; i < 12; ++i) cluster.submit();
    EXPECT_TRUE(cluster.run_until_executed(12, 60.0));
    EXPECT_TRUE(cluster.logs_consistent());
    return executed_ids(cluster.replica(2));
  };
  EXPECT_EQ(ids_for(1), ids_for(4));
}

TEST(BftBatch, OfferedLoadScenarioCommitsEverything) {
  // Open-loop arrivals: 12 requests at 50 req/s against batch_size = 4.
  using scenarios::BftScalingScenario;
  BftScalingScenario::Params params;
  params.n = 4;
  params.requests = 12;
  params.batch_size = 4;
  params.offered_load = 50.0;
  const BftScalingScenario scenario(params);
  const runtime::MetricRecord metrics =
      scenario.run(runtime::RunContext{.seed = 5, .run_index = 0});
  EXPECT_EQ(metrics.get("completed"), 1.0);
  EXPECT_GT(metrics.get("requests_per_second"), 0.0);
  EXPECT_GT(metrics.get("msgs_per_committed_request"), 0.0);
}

TEST(BftBatch, LaggardSurvivesRemoteCheckpointAtDepth) {
  // Regression: 16 unbatched in-flight slots race the checkpoint at
  // seq 16 on a 25-replica cluster. Replicas that hear a stable
  // checkpoint before finishing their own slots used to prune the
  // in-flight state and strand themselves (no state transfer), thrashing
  // hopeless view changes; they must instead keep slots above their own
  // execution horizon and finish. This seed deterministically stalled
  // before the fix (completed == 0 with ~161 view changes).
  using scenarios::BftScalingScenario;
  BftScalingScenario::Params params;
  params.n = 25;
  params.requests = 16;
  params.batch_size = 1;
  const BftScalingScenario scenario(params);
  const runtime::MetricRecord metrics = scenario.run(
      runtime::RunContext{.seed = 13757245211066428519ULL, .run_index = 0});
  EXPECT_EQ(metrics.get("completed"), 1.0);
  EXPECT_EQ(metrics.get("max_view_changes"), 0.0);
}

TEST(BftBatch, RejectsZeroBatchSize) {
  ClusterOptions opt = fast_options(45);
  opt.replica.batch_size = 0;
  EXPECT_THROW(BftCluster(4, opt), support::ContractViolation);
}

}  // namespace
}  // namespace findep::bft
