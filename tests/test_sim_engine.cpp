// Calendar-queue engine edges: slot-generation safety across recycling,
// mass same-timestamp FIFO through bucket rebuilds, year-wrapped
// far-future inserts, prompt destruction of cancelled closures,
// run()/run_until() interleaving, and a randomized differential check
// against a naive reference queue (same total order (at, seq),
// brute-force scan).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "support/rng.h"

namespace findep::sim {
namespace {

TEST(SimEngine, TenThousandSameTimestampFifo) {
  // One absolute bucket absorbs 10k ties: tail-append must keep the
  // schedule order through every growth rebuild in between.
  Simulator sim;
  std::vector<int> order;
  order.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(sim.run(), 10000u);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "tie order broke";
  }
}

TEST(SimEngine, RecycledSlotRejectsStaleId) {
  // Cancelling frees the slot; the very next schedule reuses it. The
  // stale id carries the old generation and must not touch the new
  // event — O(1) cancel safety depends on the generation tag.
  Simulator sim;
  bool new_ran = false;
  const EventId stale = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(stale));
  const EventId fresh = sim.schedule_at(1.0, [&] { new_ran = true; });
  EXPECT_FALSE(sim.cancel(stale));  // dead generation
  EXPECT_NE(stale, fresh);
  sim.run();
  EXPECT_TRUE(new_ran);
}

TEST(SimEngine, CancelDestroysCapturedStateImmediately) {
  // The tombstone pathology this engine removes: a cancelled closure's
  // captures must die at cancel() — not at the eventual pop, and not at
  // simulator destruction.
  Simulator sim;
  const auto state = std::make_shared<int>(7);
  EXPECT_EQ(state.use_count(), 1);
  const EventId id = sim.schedule_at(1.0, [state] { (void)*state; });
  EXPECT_EQ(state.use_count(), 2);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_EQ(state.use_count(), 1) << "cancelled capture kept alive";
}

TEST(SimEngine, ExecutionDestroysCapturedStateAfterTheCall) {
  Simulator sim;
  const auto state = std::make_shared<int>(0);
  sim.schedule_at(1.0, [state] { ++*state; });
  EXPECT_EQ(state.use_count(), 2);
  sim.run();
  EXPECT_EQ(*state, 1);
  EXPECT_EQ(state.use_count(), 1) << "executed capture kept alive";
}

TEST(SimEngine, CancelledFarFutureEventReleasesSlotImmediately) {
  // Far-future events link into the year-wrapped ring like any other, so
  // cancelling one is full O(1) pointer surgery: slot recycled and the
  // closure (with its captures) destroyed on the spot.
  Simulator sim;
  const auto state = std::make_shared<int>(0);
  // Dense near-term events narrow the bucket width so the far event
  // lands many ring laps ahead of the cursor.
  for (int i = 0; i < 256; ++i) {
    sim.schedule_at(1.0 + i * 1e-6, [] {});
  }
  const EventId far = sim.schedule_at(1e9, [state] { ++*state; });
  EXPECT_EQ(state.use_count(), 2);
  EXPECT_TRUE(sim.cancel(far));
  EXPECT_EQ(state.use_count(), 1) << "far-future capture kept alive";
  EXPECT_EQ(sim.run(), 256u);  // the cancelled event never executes
  EXPECT_EQ(*state, 0);
}

TEST(SimEngine, YearWrapInterleavesFarInsertsWhileDraining) {
  // The insert-while-draining workload the year-wrapped layout exists
  // for: every pop schedules a successor far beyond the calendar window.
  // Each insert must stay O(1) (no parking structure) and the drain must
  // still execute strictly in (at, seq) order across many ring laps.
  Simulator sim;
  std::vector<double> fired;
  // Narrow the width with a dense near-term burst.
  for (int i = 0; i < 512; ++i) {
    sim.schedule_at(1.0 + i * 1e-6, [] {});
  }
  int hops = 0;
  std::function<void()> rearm = [&] {
    fired.push_back(sim.now());
    if (++hops < 32) {
      sim.schedule_after(1e7 + hops, [&] { rearm(); });
    }
  };
  sim.schedule_after(1e7, [&] { rearm(); });
  sim.run();
  ASSERT_EQ(fired.size(), 32u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(sim.executed_count(), 512u + 32u);
}

TEST(SimEngine, ReentrantScheduleAtNowRunsAfterQueuedTies) {
  // schedule_at(now()) from inside a callback is legal and must sort
  // after every already-queued event at the same timestamp (FIFO by
  // schedule order), even though the executing event's slot was just
  // recycled.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] {
    order.push_back(0);
    sim.schedule_at(sim.now(), [&] { order.push_back(2); });
  });
  sim.schedule_at(2.0, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimEngine, RunBudgetInterleavesWithRunUntil) {
  // run(max_events) and run_until(deadline) share the cursor state;
  // alternating them must neither skip nor double-run events.
  Simulator sim;
  std::vector<double> fired;
  for (int i = 1; i <= 8; ++i) {
    sim.schedule_at(static_cast<double>(i), [&] {
      fired.push_back(sim.now());
    });
  }
  EXPECT_EQ(sim.run(3), 3u);              // 1, 2, 3
  EXPECT_EQ(sim.run_until(5.5), 2u);      // 4, 5
  EXPECT_EQ(sim.run(1), 1u);              // 6
  EXPECT_EQ(sim.run_until(100.0), 2u);    // 7, 8
  EXPECT_EQ(fired,
            (std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(SimEngine, DifferentialAgainstNaiveReferenceQueue) {
  // 4k random schedule/cancel ops against a brute-force reference with
  // the same contract (total order by (at, seq), FIFO ties, O(n) scan):
  // the execution sequences must match exactly, across bucket growth,
  // re-width rebuilds and year-wrapped far-future laps.
  struct Ref {
    double at;
    std::uint64_t seq;
    int tag;
  };
  for (const std::uint64_t seed : {1ULL, 7ULL, 1234567ULL}) {
    Simulator sim;
    support::Rng rng(seed);
    std::vector<Ref> ref;
    std::vector<EventId> ids;
    std::vector<std::uint64_t> ref_seqs;
    std::vector<int> got;
    std::vector<int> want;
    std::uint64_t next_seq = 0;
    int next_tag = 0;

    const auto ref_pop_min = [&]() -> std::size_t {
      std::size_t best = 0;
      for (std::size_t i = 1; i < ref.size(); ++i) {
        if (ref[i].at < ref[best].at ||
            (ref[i].at == ref[best].at && ref[i].seq < ref[best].seq)) {
          best = i;
        }
      }
      return best;
    };

    for (int op = 0; op < 4096; ++op) {
      const double r = rng.uniform(0.0, 1.0);
      if (r < 0.55 || ref.empty()) {
        // Mixed horizon: mostly near-term, a tail of far-future events
        // that lands several ring laps beyond the cursor.
        const double horizon = rng.uniform(0.0, 1.0) < 0.9 ? 1.0 : 1e6;
        const double at = sim.now() + rng.uniform(0.0, horizon);
        const int tag = next_tag++;
        ids.push_back(sim.schedule_at(at, [&got, tag] {
          got.push_back(tag);
        }));
        ref.push_back(Ref{at, next_seq, tag});
        ref_seqs.push_back(next_seq);
        ++next_seq;
      } else if (r < 0.8) {
        // Cancel a random tracked id (possibly already fired/cancelled).
        const std::size_t pick =
            static_cast<std::size_t>(rng.below(ids.size()));
        const bool cancelled = sim.cancel(ids[pick]);
        bool ref_live = false;
        for (std::size_t i = 0; i < ref.size(); ++i) {
          if (ref[i].seq == ref_seqs[pick]) {
            ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
            ref_live = true;
            break;
          }
        }
        ASSERT_EQ(cancelled, ref_live) << "cancel liveness diverged";
      } else {
        const std::size_t i = ref_pop_min();
        want.push_back(ref[i].tag);
        ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
        ASSERT_EQ(sim.run(1), 1u);
      }
    }
    while (!ref.empty()) {
      const std::size_t i = ref_pop_min();
      want.push_back(ref[i].tag);
      ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
    }
    sim.run();
    EXPECT_EQ(got, want) << "seed " << seed;
    EXPECT_FALSE(sim.has_pending());
  }
}

TEST(SimEngine, StatsExposeCalendarGeometry) {
  Simulator sim;
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(1.0 + i * 0.001, [] {});
  }
  const auto st = sim.engine_stats();
  EXPECT_GE(st.slab_slots, 1000u);
  EXPECT_GE(st.buckets, 16u);
  EXPECT_GT(st.bucket_width, 0.0);
  EXPECT_GE(st.rebuilds, 1u);  // growth from the 16-bucket seed
  sim.run();
  EXPECT_EQ(sim.executed_count(), 1000u);
}

}  // namespace
}  // namespace findep::sim
