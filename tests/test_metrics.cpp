// Entropy and diversity metrics: identities, bounds, and property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "diversity/metrics.h"
#include "support/assert.h"
#include "support/rng.h"

namespace findep::diversity {
namespace {

TEST(Entropy, UniformIsLog2K) {
  for (std::size_t k : {1u, 2u, 4u, 8u, 32u, 100u}) {
    const std::vector<double> p(k, 1.0 / static_cast<double>(k));
    EXPECT_NEAR(shannon_entropy(p), std::log2(static_cast<double>(k)), 1e-12)
        << k;
  }
}

TEST(Entropy, EightUniformReplicasGiveThreeBits) {
  // The Example-1 comparison point: BFT with 8 replicas, H = 3.
  const std::vector<double> p(8, 0.125);
  EXPECT_DOUBLE_EQ(shannon_entropy(p), 3.0);
}

TEST(Entropy, PointMassIsZero) {
  const std::vector<double> p = {1.0};
  EXPECT_DOUBLE_EQ(shannon_entropy(p), 0.0);
  const std::vector<double> q = {0.0, 5.0, 0.0};
  EXPECT_DOUBLE_EQ(shannon_entropy(q), 0.0);
}

TEST(Entropy, ZeroEntriesDoNotContribute) {
  const std::vector<double> with = {0.5, 0.5, 0.0, 0.0};
  const std::vector<double> without = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(shannon_entropy(with), shannon_entropy(without));
}

TEST(Entropy, ScaleInvariant) {
  const std::vector<double> p = {1.0, 2.0, 3.0};
  std::vector<double> scaled = {10.0, 20.0, 30.0};
  EXPECT_NEAR(shannon_entropy(p), shannon_entropy(scaled), 1e-12);
}

TEST(Entropy, RejectsInvalidInput) {
  EXPECT_THROW((void)shannon_entropy(std::vector<double>{}),
               support::ContractViolation);
  EXPECT_THROW((void)shannon_entropy(std::vector<double>{-1.0, 2.0}),
               support::ContractViolation);
  EXPECT_THROW((void)shannon_entropy(std::vector<double>{0.0, 0.0}),
               support::ContractViolation);
}

class EntropyBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EntropyBounds, RandomDistributionsStayInBounds) {
  support::Rng rng(GetParam());
  const std::size_t k = 1 + rng.below(64);
  std::vector<double> p(k);
  for (auto& x : p) x = rng.uniform(0.001, 1.0);
  const double h = shannon_entropy(p);
  EXPECT_GE(h, 0.0);
  EXPECT_LE(h, std::log2(static_cast<double>(k)) + 1e-9);
  // KL to uniform is the exact gap.
  EXPECT_NEAR(kl_from_uniform(p),
              std::log2(static_cast<double>(k)) - h, 1e-9);
  EXPECT_GE(kl_from_uniform(p), -1e-12);
}

TEST_P(EntropyBounds, MergingTwoConfigsNeverRaisesEntropy) {
  // Coarsening a partition cannot increase Shannon entropy.
  support::Rng rng(GetParam() ^ 0xabcd);
  const std::size_t k = 2 + rng.below(32);
  std::vector<double> p(k);
  for (auto& x : p) x = rng.uniform(0.001, 1.0);
  std::vector<double> merged(p.begin() + 1, p.end());
  merged[0] += p[0];
  EXPECT_LE(shannon_entropy(merged), shannon_entropy(p) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntropyBounds,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(Evenness, UniformIsOneSkewedLess) {
  const std::vector<double> uniform = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(evenness(uniform), 1.0, 1e-12);
  const std::vector<double> skewed = {0.7, 0.1, 0.1, 0.1};
  EXPECT_LT(evenness(skewed), 1.0);
  const std::vector<double> single = {1.0};
  EXPECT_DOUBLE_EQ(evenness(single), 1.0);
}

TEST(Renyi, CollapsesToShannonAtOne) {
  const std::vector<double> p = {0.5, 0.25, 0.25};
  EXPECT_NEAR(renyi_entropy(p, 1.0), shannon_entropy(p), 1e-12);
}

TEST(Renyi, OrderZeroIsLogSupport) {
  const std::vector<double> p = {0.9, 0.05, 0.05, 0.0};
  EXPECT_NEAR(renyi_entropy(p, 0.0), std::log2(3.0), 1e-12);
}

TEST(Renyi, NonIncreasingInAlpha) {
  const std::vector<double> p = {0.6, 0.2, 0.1, 0.1};
  double prev = renyi_entropy(p, 0.0);
  for (double alpha : {0.5, 1.0, 1.5, 2.0, 4.0, 16.0}) {
    const double h = renyi_entropy(p, alpha);
    EXPECT_LE(h, prev + 1e-9) << alpha;
    prev = h;
  }
}

TEST(Hill, EffectiveNumbers) {
  const std::vector<double> uniform = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(hill_number(uniform, 0.0), 4.0, 1e-9);
  EXPECT_NEAR(hill_number(uniform, 1.0), 4.0, 1e-9);
  EXPECT_NEAR(hill_number(uniform, 2.0), 4.0, 1e-9);

  const std::vector<double> skewed = {0.97, 0.01, 0.01, 0.01};
  EXPECT_NEAR(hill_number(skewed, 0.0), 4.0, 1e-9);
  EXPECT_LT(hill_number(skewed, 1.0), 1.3);  // effectively ~1 config
}

TEST(Simpson, ConcentrationAndComplement) {
  const std::vector<double> p = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(simpson_index(p), 0.5);
  EXPECT_DOUBLE_EQ(gini_simpson(p), 0.5);
  const std::vector<double> mono = {1.0};
  EXPECT_DOUBLE_EQ(simpson_index(mono), 1.0);
  EXPECT_DOUBLE_EQ(gini_simpson(mono), 0.0);
}

TEST(Simpson, HillTwoIsInverseSimpson) {
  const std::vector<double> p = {0.4, 0.3, 0.2, 0.1};
  EXPECT_NEAR(hill_number(p, 2.0), 1.0 / simpson_index(p), 1e-9);
}

TEST(BergerParker, LargestShare) {
  const std::vector<double> p = {3.0, 1.0, 6.0};
  EXPECT_DOUBLE_EQ(berger_parker(p), 0.6);
}

TEST(Metrics, DistributionOverloadsAgreeWithSpans) {
  ConfigDistribution dist = ConfigDistribution::from_shares(
      std::vector<double>{0.4, 0.35, 0.25});
  const auto shares = dist.shares();
  EXPECT_NEAR(shannon_entropy(dist), shannon_entropy(shares), 1e-12);
  EXPECT_NEAR(evenness(dist), evenness(shares), 1e-12);
  EXPECT_NEAR(hill_number(dist, 2.0), hill_number(shares, 2.0), 1e-12);
  EXPECT_NEAR(berger_parker(dist), berger_parker(shares), 1e-12);
  EXPECT_NEAR(kl_from_uniform(dist), kl_from_uniform(shares), 1e-12);
}

}  // namespace
}  // namespace findep::diversity
