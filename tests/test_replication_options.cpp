// The shared ReplicaOptions validator and the protocol axis parser: one
// validator serves both ordering protocols, selecting the right
// guardrails per protocol and rejecting each misconfiguration with a
// specific message.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "replication/options.h"
#include "support/assert.h"

namespace findep::replication {
namespace {

/// Runs the validator and returns the ContractViolation message ("" when
/// the options validate).
std::string violation(const ReplicaOptions& options, Protocol protocol) {
  try {
    validate_replica_options(options, protocol);
    return "";
  } catch (const support::ContractViolation& e) {
    return e.what();
  }
}

TEST(ProtocolAxis, ParsesBothProtocolNames) {
  EXPECT_EQ(parse_protocol("pbft"), Protocol::kPbft);
  EXPECT_EQ(parse_protocol("hotstuff"), Protocol::kHotStuff);
  EXPECT_STREQ(protocol_name(Protocol::kPbft), "pbft");
  EXPECT_STREQ(protocol_name(Protocol::kHotStuff), "hotstuff");
}

TEST(ProtocolAxis, RejectsUnknownProtocolWithSpecificMessage) {
  try {
    parse_protocol("raft");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "unknown protocol 'raft' (expected pbft or hotstuff)");
  }
}

TEST(ReplicaOptionsValidator, DefaultsValidateForBothProtocols) {
  const ReplicaOptions options;
  EXPECT_EQ(violation(options, Protocol::kPbft), "");
  EXPECT_EQ(violation(options, Protocol::kHotStuff), "");
}

TEST(ReplicaOptionsValidator, RejectsShrinkingPacemakerBackoff) {
  ReplicaOptions options;
  options.pacemaker_backoff = 0.5;
  // PBFT ignores the pacemaker knobs entirely; HotStuff rejects them
  // with the why-it-matters message.
  EXPECT_EQ(violation(options, Protocol::kPbft), "");
  EXPECT_NE(violation(options, Protocol::kHotStuff).find(
                "pacemaker_backoff must be >= 1"),
            std::string::npos);
  EXPECT_NE(violation(options, Protocol::kHotStuff).find(
                "shrinking round timeout"),
            std::string::npos);
}

TEST(ReplicaOptionsValidator, BatchTimerMustUndercutTheLivenessTimer) {
  // The same misconfiguration trips a different guardrail per protocol:
  // the batch cut must land before whatever timer triggers a leader
  // change — PBFT's request timer, HotStuff's round timer.
  ReplicaOptions options;
  options.request_timeout = 1.0;
  options.pacemaker_timeout = 2.0;
  options.batch_timeout = 1.5;  // above request_timeout, below pacemaker
  EXPECT_NE(violation(options, Protocol::kPbft).find(
                "batch_timeout must stay strictly below request_timeout"),
            std::string::npos);
  EXPECT_EQ(violation(options, Protocol::kHotStuff), "");

  options.batch_timeout = 2.5;  // now above the round timer too
  EXPECT_NE(violation(options, Protocol::kHotStuff).find(
                "batch_timeout must stay strictly below pacemaker_timeout"),
            std::string::npos);
}

TEST(ReplicaOptionsValidator, RejectsBackoffCapBelowOneStep) {
  ReplicaOptions options;
  options.pacemaker_backoff = 4.0;
  options.pacemaker_max_backoff = 2.0;
  EXPECT_EQ(violation(options, Protocol::kPbft), "");
  EXPECT_NE(violation(options, Protocol::kHotStuff).find(
                "pacemaker_max_backoff must allow at least one backoff "
                "step"),
            std::string::npos);
}

}  // namespace
}  // namespace findep::replication
