// PBFT: normal case, crash & Byzantine faults, view changes, weighted
// quorums, checkpointing. Safety is asserted via log prefix-consistency.
#include <gtest/gtest.h>

#include "bft/cluster.h"
#include "support/assert.h"

namespace findep::bft {
namespace {

ClusterOptions fast_options(std::uint64_t seed = 1) {
  ClusterOptions opt;
  opt.network.min_latency = 0.005;
  opt.network.mean_extra_latency = 0.01;
  opt.replica.request_timeout = 0.8;
  opt.replica.view_change_timeout = 1.2;
  opt.seed = seed;
  return opt;
}

TEST(Bft, HappyPathExecutesAndAgrees) {
  BftCluster cluster(4, fast_options());
  for (int i = 0; i < 5; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(5, 30.0));
  EXPECT_TRUE(cluster.logs_consistent());
  EXPECT_EQ(cluster.replica(0).view(), 0u);  // no view change needed
  EXPECT_GT(cluster.mean_latency(), 0.0);
}

TEST(Bft, RejectsTooSmallCluster) {
  EXPECT_THROW(BftCluster(3, fast_options()), support::ContractViolation);
}

class BftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BftSizes, ExecutesAcrossClusterSizes) {
  BftCluster cluster(GetParam(), fast_options(GetParam()));
  for (int i = 0; i < 3; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(3, 60.0)) << GetParam();
  EXPECT_TRUE(cluster.logs_consistent());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BftSizes,
                         ::testing::Values(4, 5, 7, 10, 13, 16));

TEST(Bft, ToleratesSilentBackupReplica) {
  // n = 4 tolerates f = 1; replica 2 (a backup) is silent.
  std::vector<Behavior> behaviors(4, Behavior::kHonest);
  behaviors[2] = Behavior::kSilent;
  BftCluster cluster(4, fast_options(2), behaviors);
  for (int i = 0; i < 5; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(5, 30.0));
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(Bft, SilentPrimaryTriggersViewChangeAndRecovers) {
  std::vector<Behavior> behaviors(4, Behavior::kHonest);
  behaviors[0] = Behavior::kSilent;  // primary of view 0
  BftCluster cluster(4, fast_options(3), behaviors);
  for (int i = 0; i < 3; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(3, 60.0));
  EXPECT_TRUE(cluster.logs_consistent());
  // Some honest replica moved past view 0.
  bool advanced = false;
  for (std::size_t i = 1; i < 4; ++i) {
    advanced |= cluster.replica(i).view() > 0;
  }
  EXPECT_TRUE(advanced);
}

TEST(Bft, EquivocatingPrimaryCannotViolateSafety) {
  std::vector<Behavior> behaviors(4, Behavior::kHonest);
  behaviors[0] = Behavior::kEquivocate;
  BftCluster cluster(4, fast_options(4), behaviors);
  for (int i = 0; i < 3; ++i) cluster.submit();
  // Progress resumes after the view change evicts the equivocator.
  EXPECT_TRUE(cluster.run_until_executed(3, 90.0));
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(Bft, TwoSilentInSevenTolerated) {
  // n = 7 tolerates f = 2.
  std::vector<Behavior> behaviors(7, Behavior::kHonest);
  behaviors[3] = Behavior::kSilent;
  behaviors[5] = Behavior::kSilent;
  BftCluster cluster(7, fast_options(5), behaviors);
  for (int i = 0; i < 4; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(4, 60.0));
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(Bft, CascadedPrimaryFailuresEventuallyRecover) {
  // Primaries of views 0 and 1 both silent: two view changes needed.
  std::vector<Behavior> behaviors(7, Behavior::kHonest);
  behaviors[0] = Behavior::kSilent;
  behaviors[1] = Behavior::kSilent;
  BftCluster cluster(7, fast_options(6), behaviors);
  for (int i = 0; i < 2; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(2, 120.0));
  EXPECT_TRUE(cluster.logs_consistent());
  bool reached_view2 = false;
  for (std::size_t i = 0; i < 7; ++i) {
    reached_view2 |= cluster.replica(i).view() >= 2;
  }
  EXPECT_TRUE(reached_view2);
}

TEST(Bft, BeyondThresholdStallsButStaysSafe) {
  // n = 4 with 2 silent replicas (> f): no progress, but no divergence.
  std::vector<Behavior> behaviors(4, Behavior::kHonest);
  behaviors[1] = Behavior::kSilent;
  behaviors[2] = Behavior::kSilent;
  BftCluster cluster(4, fast_options(7), behaviors);
  cluster.submit();
  EXPECT_FALSE(cluster.run_until_executed(1, 20.0));
  EXPECT_TRUE(cluster.logs_consistent());
  EXPECT_EQ(cluster.min_honest_executed(), 0u);
}

TEST(Bft, WeightedQuorumFollowsPowerNotCount) {
  // 5 replicas; replica 0 holds 60% of the power and is silent: the rest
  // hold only 40% < 2/3 — no progress possible (safety bound is weighted).
  std::vector<double> weights = {6.0, 1.0, 1.0, 1.0, 1.0};
  std::vector<Behavior> behaviors(5, Behavior::kHonest);
  behaviors[0] = Behavior::kSilent;
  BftCluster heavy(weights, fast_options(8), behaviors);
  heavy.submit();
  EXPECT_FALSE(heavy.run_until_executed(1, 20.0));

  // Same weights but a *light* replica fails: 9/10 > 2/3 remains.
  std::vector<Behavior> light_fail(5, Behavior::kHonest);
  light_fail[4] = Behavior::kSilent;
  BftCluster light(weights, fast_options(9), light_fail);
  for (int i = 0; i < 3; ++i) light.submit();
  EXPECT_TRUE(light.run_until_executed(3, 30.0));
  EXPECT_TRUE(light.logs_consistent());
}

TEST(Bft, CheckpointsPruneAndStabilize) {
  ClusterOptions opt = fast_options(10);
  opt.replica.checkpoint_interval = 4;
  BftCluster cluster(4, opt);
  for (int i = 0; i < 10; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(10, 60.0));
  cluster.run_for(5.0);  // let checkpoint votes settle
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(cluster.replica(i).stable_checkpoint(), 4u) << i;
  }
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(Bft, MessageComplexityGrowsSuperlinearly) {
  const auto messages_for = [](std::size_t n) {
    BftCluster cluster(n, fast_options(11));
    for (int i = 0; i < 3; ++i) cluster.submit();
    EXPECT_TRUE(cluster.run_until_executed(3, 60.0));
    return cluster.network().stats().messages_sent;
  };
  const auto small = messages_for(4);
  const auto large = messages_for(8);
  // Quadratic phases: 2x replicas should cost clearly more than 2x
  // messages.
  EXPECT_GT(static_cast<double>(large),
            2.5 * static_cast<double>(small));
}

TEST(Bft, ExecutedSequencesAreDense) {
  BftCluster cluster(4, fast_options(12));
  for (int i = 0; i < 6; ++i) cluster.submit();
  ASSERT_TRUE(cluster.run_until_executed(6, 30.0));
  const auto& log = cluster.replica(1).executed();
  for (std::size_t j = 0; j < log.size(); ++j) {
    EXPECT_EQ(log[j].seq, j + 1);
  }
}

TEST(Bft, DuplicateClientSubmissionsExecuteOnce) {
  BftCluster cluster(4, fast_options(13));
  cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(1, 30.0));
  const std::size_t before = cluster.replica(0).executed().size();
  // The client's request went to all four replicas; each forwarded it to
  // the primary. Still exactly one execution.
  cluster.run_for(5.0);
  EXPECT_EQ(cluster.replica(0).executed().size(), before);
}

TEST(Bft, LatencyScalesWithNetworkDelay) {
  ClusterOptions fast = fast_options(14);
  ClusterOptions slow = fast_options(14);
  slow.network.min_latency = 0.2;
  BftCluster a(4, fast), b(4, slow);
  a.submit();
  b.submit();
  ASSERT_TRUE(a.run_until_executed(1, 30.0));
  ASSERT_TRUE(b.run_until_executed(1, 30.0));
  EXPECT_LT(a.mean_latency(), b.mean_latency());
}

}  // namespace
}  // namespace findep::bft
