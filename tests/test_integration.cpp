// End-to-end pipelines across modules — the scenarios the paper describes,
// executed: attestation-driven discovery feeding the diversity analysis;
// correlated faults feeding BFT; pool compromise feeding Nakamoto attacks.
#include <gtest/gtest.h>

#include <cmath>

#include "attest/registry.h"
#include "bft/cluster.h"
#include "committee/diversity_aware.h"
#include "committee/sortition.h"
#include "config/sampler.h"
#include "diversity/manager.h"
#include "diversity/metrics.h"
#include "faults/adversary.h"
#include "faults/injector.h"
#include "nakamoto/attack.h"
#include "nakamoto/pools.h"
#include "support/assert.h"

namespace findep {
namespace {

// Pipeline 1: attest → registry → auditor reconstruction → analyzer.
TEST(Integration, AttestationToDiversityReport) {
  crypto::KeyRegistry keys;
  support::Rng rng(1);
  const config::ComponentCatalog catalog = config::standard_catalog();
  attest::AttestationAuthority authority(keys, rng);
  attest::AttestationRegistry registry(keys, authority.root_key());

  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{.zipf_exponent = 0.8,
                                      .attestable_fraction = 1.0});
  std::vector<attest::PlatformModule> platforms;
  std::unordered_map<crypto::PublicKey, attest::CommitmentOpening> openings;
  for (std::size_t i = 0; i < 24; ++i) {
    const auto cfg = sampler.sample(rng);
    const auto hw = cfg.component(config::ComponentKind::kTrustedHardware);
    platforms.emplace_back(keys, rng, authority, *hw, cfg);
    ASSERT_TRUE(
        registry.admit(platforms.back().quote(registry.challenge()), 1.0));
    openings[platforms.back().vote_key()] =
        platforms.back().open_commitment();
  }

  const diversity::ConfigDistribution dist =
      registry.reconstruct_distribution(openings);
  EXPECT_DOUBLE_EQ(dist.total_power(), 24.0);
  EXPECT_GE(dist.support_size(), 2u);
  const double h = diversity::shannon_entropy(dist);
  EXPECT_GT(h, 0.0);
  EXPECT_LE(h, std::log2(24.0) + 1e-9);
}

// Pipeline 2: diversity analysis predicts which fault pattern breaks BFT,
// and the BFT cluster confirms it.
TEST(Integration, CorrelatedFaultStallsBftExactlyWhenPredicted) {
  // 4 replicas, two sharing a configuration (abundance 2 on one config).
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(catalog, config::SamplerOptions{});
  auto configs = sampler.distinct_configurations(3);
  configs.push_back(configs[0]);  // replica 3 clones replica 0's config

  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg : configs) {
    population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  // Prediction: one configuration fault compromises 2/4 = 50% > 1/3.
  faults::FaultInjector injector(population);
  const faults::CompromiseResult predicted =
      injector.worst_case_components(1);
  EXPECT_TRUE(predicted.breaks(diversity::kBftThreshold));
  ASSERT_EQ(predicted.compromised.size(), 2u);

  // Execution: silence exactly the predicted replicas.
  std::vector<bft::Behavior> behaviors(4, bft::Behavior::kHonest);
  for (const std::size_t r : predicted.compromised) {
    behaviors[r] = bft::Behavior::kSilent;
  }
  bft::ClusterOptions opt;
  opt.replica.request_timeout = 0.5;
  bft::BftCluster broken(4, opt, behaviors);
  broken.submit();
  EXPECT_FALSE(broken.run_until_executed(1, 15.0));
  EXPECT_TRUE(broken.logs_consistent());  // safe, just not live

  // Control: a fault on a *distinct* configuration (1/4 ≤ 1/3) is fine.
  std::vector<bft::Behavior> single(4, bft::Behavior::kHonest);
  single[1] = bft::Behavior::kSilent;
  bft::BftCluster healthy(4, opt, single);
  healthy.submit();
  EXPECT_TRUE(healthy.run_until_executed(1, 15.0));
}

// Pipeline 3: Lazarus-style assignment prevents the correlated stall.
TEST(Integration, DiversityManagementRestoresFaultIndependence) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  diversity::LazarusStyleAssigner assigner(catalog);
  const auto configs = assigner.assign(4);
  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg : configs) {
    population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  faults::FaultInjector injector(population);
  // Now the worst single component fault hits at most... the TEE axis has
  // variety 4, so distinct assignment keeps every component unique: one
  // fault = one replica = 25% ≤ 1/3.
  const faults::CompromiseResult worst = injector.worst_case_components(1);
  EXPECT_FALSE(worst.breaks(diversity::kBftThreshold));
}

// Pipeline 4: Example-1 pools → component compromise → double-spend odds.
TEST(Integration, PoolSoftwareCompromiseEscalatesAttack) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  // Best case (paper): distinct pool configurations.
  const nakamoto::PoolSet best = nakamoto::PoolSet::example1(catalog, true);
  // Realistic: Zipf-skewed software choices across pools.
  const nakamoto::PoolSet real =
      nakamoto::PoolSet::example1(catalog, false, 11);

  const auto worst_component_share = [&](const nakamoto::PoolSet& pools) {
    faults::FaultInjector injector(pools.as_population());
    return injector.worst_case_components(1).compromised_fraction;
  };
  const double q_best = worst_component_share(best);
  const double q_real = worst_component_share(real);
  EXPECT_GE(q_real, q_best - 1e-12);

  // The attack math amplifies the difference at 6 confirmations.
  const double p_best = nakamoto::attack_success_closed_form(q_best, 6);
  const double p_real = nakamoto::attack_success_closed_form(q_real, 6);
  EXPECT_GE(p_real, p_best);
  // Monoculture across pools is fatal: the whole network's power shares
  // components somewhere.
  const nakamoto::PoolSet mono = nakamoto::PoolSet::example1(
      config::monoculture_catalog(), false, 12);
  EXPECT_DOUBLE_EQ(worst_component_share(mono), 1.0);
  EXPECT_DOUBLE_EQ(
      nakamoto::attack_success_closed_form(worst_component_share(mono), 6),
      1.0);
}

// Pipeline 5: sortition → diversity-aware committee → weighted BFT run.
TEST(Integration, DiverseCommitteeRunsWeightedConsensus) {
  crypto::KeyRegistry crypto_registry;
  committee::StakeRegistry stake;
  std::vector<crypto::KeyPair> keys;
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(catalog, config::SamplerOptions{});
  const auto configs = sampler.distinct_configurations(12);
  support::Rng rng(3);
  for (std::size_t i = 0; i < 12; ++i) {
    keys.push_back(crypto::KeyPair::derive(9000 + i));
    crypto_registry.enroll(keys.back());
    stake.add("p" + std::to_string(i), rng.uniform(1.0, 3.0), configs[i],
              true, keys.back().public_key());
  }
  committee::Sortition sortition(stake, 12.0);  // everyone eligible
  const committee::SortitionResult seats = sortition.select(1, keys);
  std::vector<committee::ParticipantId> candidates;
  for (const auto& seat : seats.seats) candidates.push_back(seat.participant);
  ASSERT_GE(candidates.size(), 4u);

  committee::SelectionPolicy policy;
  policy.per_config_cap = 0.25;
  const committee::Committee formed =
      committee::form_committee(stake, candidates, policy);
  ASSERT_GE(formed.members.size(), 4u);
  EXPECT_FALSE(formed.bft.single_point_of_failure);

  // Run weighted PBFT with the committee's weights.
  std::vector<double> weights;
  for (const auto& m : formed.members) weights.push_back(m.weight);
  bft::BftCluster cluster(weights, bft::ClusterOptions{}, {});
  for (int i = 0; i < 3; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(3, 60.0));
  EXPECT_TRUE(cluster.logs_consistent());
}

// Pipeline 6: the §V two-tier proposal measurably improves resilience.
TEST(Integration, TwoTierWeightingImprovesCommitteeResilience) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{.zipf_exponent = 0.5,
                                      .attestable_fraction = 1.0});
  support::Rng rng(4);
  std::vector<diversity::ReplicaRecord> population;
  for (std::size_t i = 0; i < 30; ++i) {
    auto cfg = sampler.sample(rng);
    diversity::ReplicaRecord rec{cfg, 1.0, i % 2 == 0};
    if (!rec.attested) {
      rec.configuration.clear(config::ComponentKind::kTrustedHardware);
    }
    population.push_back(rec);
  }
  const diversity::TwoTierOutcome flat =
      diversity::TwoTierPolicy(1.0).apply(population);
  const diversity::TwoTierOutcome boosted =
      diversity::TwoTierPolicy(4.0).apply(population);
  EXPECT_LT(boosted.unknown_share, flat.unknown_share);
  EXPECT_GE(boosted.bft.min_faults, flat.bft.min_faults);
}

}  // namespace
}  // namespace findep
