// Diversity enforcement: Lazarus-style assignment, weight caps, two-tier.
#include <gtest/gtest.h>

#include "diversity/datasets.h"
#include "diversity/manager.h"
#include "diversity/metrics.h"
#include "diversity/optimality.h"
#include "support/assert.h"

namespace findep::diversity {
namespace {

TEST(Lazarus, AssignsDistinctCompleteConfigurations) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  LazarusStyleAssigner assigner(catalog);
  const auto configs = assigner.assign(8);
  ASSERT_EQ(configs.size(), 8u);
  ConfigDistribution dist;
  for (const auto& cfg : configs) {
    EXPECT_TRUE(cfg.is_complete());
    dist.add(cfg, 1.0);
  }
  EXPECT_TRUE(is_kappa_optimal(dist, 8));
  EXPECT_NEAR(shannon_entropy(dist), 3.0, 1e-9);
}

TEST(WeightCap, NoOpWhenLoose) {
  const ConfigDistribution dist = ConfigDistribution::from_shares(
      std::vector<double>{0.4, 0.35, 0.25});
  const CappedDistribution out = WeightCapPolicy(0.5).apply(dist);
  EXPECT_NEAR(out.retained_fraction, 1.0, 1e-12);
  EXPECT_NEAR(shannon_entropy(out.distribution), shannon_entropy(dist),
              1e-12);
}

TEST(WeightCap, CapRaisesEntropyAndCostsPower) {
  const ConfigDistribution bitcoin =
      datasets::bitcoin_best_case_distribution(100);
  const double before = shannon_entropy(bitcoin);
  const CappedDistribution out = WeightCapPolicy(0.05).apply(bitcoin);
  EXPECT_GT(shannon_entropy(out.distribution), before);
  EXPECT_LT(out.retained_fraction, 1.0);
  EXPECT_GT(out.retained_fraction, 0.2);
  // No configuration exceeds the cap relative to the *original* total.
  for (const auto& e : out.distribution.entries()) {
    EXPECT_LE(e.power, 0.05 * bitcoin.total_power() + 1e-9);
  }
}

TEST(WeightCap, RejectsInvalidCap) {
  EXPECT_THROW(WeightCapPolicy(0.0), support::ContractViolation);
  EXPECT_THROW(WeightCapPolicy(1.5), support::ContractViolation);
}

TEST(WeightCap, TightestForEntropyMeetsTargetWhenFeasible) {
  const ConfigDistribution bitcoin =
      datasets::bitcoin_best_case_distribution(100);
  const double target = 4.0;  // unreachable without caps (H ≈ 2.9)
  const WeightCapPolicy policy =
      WeightCapPolicy::tightest_for_entropy(bitcoin, target);
  const CappedDistribution out = policy.apply(bitcoin);
  EXPECT_GE(shannon_entropy(out.distribution), target);
}

TEST(WeightCap, TightestForEntropyFallsBackToBest) {
  // Entropy target beyond log2(support): return the best achievable.
  const ConfigDistribution small = ConfigDistribution::from_shares(
      std::vector<double>{0.8, 0.2});
  const WeightCapPolicy policy =
      WeightCapPolicy::tightest_for_entropy(small, 10.0);
  const CappedDistribution out = policy.apply(small);
  EXPECT_NEAR(shannon_entropy(out.distribution), 1.0, 1e-9);
}

std::vector<ReplicaRecord> mixed_population() {
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(catalog, config::SamplerOptions{});
  const auto configs = sampler.distinct_configurations(6);
  std::vector<ReplicaRecord> population;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    // Half the population attested, half not.
    population.push_back(ReplicaRecord{configs[i], 1.0, i % 2 == 0});
  }
  return population;
}

TEST(TwoTier, UnknownMassIsOneConfiguration) {
  const TwoTierOutcome out = TwoTierPolicy(1.0).apply(mixed_population());
  // 3 attested configs + 1 aggregated unknown bucket.
  EXPECT_EQ(out.effective.support_size(), 4u);
  EXPECT_NEAR(out.unknown_share, 0.5, 1e-12);
}

TEST(TwoTier, HigherAttestedWeightShrinksUnknownShare) {
  const auto population = mixed_population();
  const TwoTierOutcome w1 = TwoTierPolicy(1.0).apply(population);
  const TwoTierOutcome w3 = TwoTierPolicy(3.0).apply(population);
  EXPECT_LT(w3.unknown_share, w1.unknown_share);
  EXPECT_NEAR(w3.unknown_share, 3.0 / (3.0 * 3.0 + 3.0), 1e-12);
}

TEST(TwoTier, WeightingRemovesSinglePointOfFailure) {
  // Unknown mass holds 50% at weight 1 (breaks both thresholds); at
  // weight 3 it holds 25% (below the BFT third? 3/(9+3)=0.25 < 1/3 ✓).
  const auto population = mixed_population();
  const TwoTierOutcome w1 = TwoTierPolicy(1.0).apply(population);
  EXPECT_TRUE(w1.bft.single_point_of_failure);
  const TwoTierOutcome w3 = TwoTierPolicy(3.0).apply(population);
  EXPECT_FALSE(w3.bft.single_point_of_failure);
  EXPECT_GT(w3.bft.min_faults, w1.bft.min_faults);
}

TEST(TwoTier, AllAttestedHasNoUnknownBucket) {
  auto population = mixed_population();
  for (auto& rec : population) rec.attested = true;
  const TwoTierOutcome out = TwoTierPolicy(2.0).apply(population);
  EXPECT_EQ(out.effective.support_size(), 6u);
  EXPECT_DOUBLE_EQ(out.unknown_share, 0.0);
}

TEST(TwoTier, RejectsSubUnitWeightAndEmptyPopulation) {
  EXPECT_THROW(TwoTierPolicy(0.5), support::ContractViolation);
  EXPECT_THROW((void)TwoTierPolicy(1.0).apply({}),
               support::ContractViolation);
}

}  // namespace
}  // namespace findep::diversity
