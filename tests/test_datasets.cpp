// The Example-1 Bitcoin dataset and the Figure-1 entropy series.
#include <gtest/gtest.h>

#include "diversity/datasets.h"
#include "diversity/metrics.h"
#include "diversity/optimality.h"
#include "support/assert.h"

namespace findep::diversity::datasets {
namespace {

TEST(Example1, SeventeenPoolsMatchingPaperTotals) {
  const auto shares = bitcoin_pool_shares_percent();
  ASSERT_EQ(shares.size(), kBitcoinPoolCount);
  EXPECT_DOUBLE_EQ(shares[0], 34.239);  // Foundry USA
  double total = 0.0;
  for (const double s : shares) total += s;
  // Paper: "17 mining pools ... possess 99.13% mining power".
  EXPECT_NEAR(total, 99.13, 0.03);
  EXPECT_NEAR(bitcoin_residual_percent(), 0.87, 0.03);
  EXPECT_NEAR(total + bitcoin_residual_percent(), 100.0, 1e-9);
}

TEST(Example1, NamesAlignWithShares) {
  const auto names = bitcoin_pool_names();
  ASSERT_EQ(names.size(), kBitcoinPoolCount);
  EXPECT_EQ(names[0], "Foundry USA");
  EXPECT_EQ(names[1], "AntPool");
}

TEST(Figure1, DistributionCompositionIsPoolsPlusResidual) {
  const ConfigDistribution dist = bitcoin_best_case_distribution(101);
  // Paper caption: x = 101 means 118 miners in the system.
  EXPECT_EQ(dist.support_size(), 118u);
  EXPECT_NEAR(dist.total_power(), 100.0, 1e-9);
}

TEST(Figure1, EntropyIncreasesInResidualMiners) {
  const auto series = figure1_entropy_series(200);
  ASSERT_EQ(series.size(), 200u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i], series[i - 1] - 1e-12) << i;
  }
}

TEST(Figure1, EntropyStaysBelowThreeBits) {
  // The paper's headline observation: even with 1000 extra miners the
  // entropy stays below 3 (an 8-replica uniform BFT system).
  const auto series = figure1_entropy_series(1000);
  for (const double h : series) {
    EXPECT_LT(h, 3.0);
  }
  EXPECT_GT(series.back(), series.front());
  // And the 8-replica BFT comparison point is exactly 3 bits.
  EXPECT_DOUBLE_EQ(shannon_entropy(ConfigDistribution::uniform(8)), 3.0);
}

TEST(Figure1, SingleResidualMinerLowerBound) {
  // x = 1: 18 configurations, H ≈ 2.83 bits — dominated by the oligopoly
  // head, already close to its x → ∞ ceiling.
  const double h = shannon_entropy(bitcoin_best_case_distribution(1));
  EXPECT_GT(h, 2.7);
  EXPECT_LT(h, 2.9);
}

TEST(Figure1, BitcoinNoMoreDiverseThanEightReplicaBft) {
  // 2^H ≤ 8 even at 1000 residual miners: Bitcoin's effective diversity
  // never beats an 8-replica uniform BFT system (the paper's comparison).
  const double h = shannon_entropy(bitcoin_best_case_distribution(1000));
  EXPECT_LT(h, 3.0);
  EXPECT_LE(equivalent_uniform_configs(h), 8u);
}

TEST(Figure1, SeriesMatchesDirectEvaluation) {
  const auto series = figure1_entropy_series(10);
  for (std::size_t x = 1; x <= 10; ++x) {
    EXPECT_NEAR(series[x - 1],
                shannon_entropy(bitcoin_best_case_distribution(x)), 1e-12);
  }
}

TEST(Figure1, RejectsZeroMiners) {
  EXPECT_THROW((void)bitcoin_best_case_distribution(0),
               support::ContractViolation);
  EXPECT_THROW((void)figure1_entropy_series(0),
               support::ContractViolation);
}

}  // namespace
}  // namespace findep::diversity::datasets
