// Modeled crypto cost in the PBFT cluster: crypto=free stays exactly the
// historical protocol (worker knob inert), a modeled cost slows the run,
// more workers speed it back up, and every configuration remains a pure
// function of the seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bft/cluster.h"
#include "crypto/cost.h"
#include "support/assert.h"

namespace findep::bft {
namespace {

ClusterOptions crypto_options(std::uint64_t seed, crypto::CostModel model,
                              std::size_t workers) {
  ClusterOptions opt;
  opt.network.min_latency = 0.005;
  opt.network.mean_extra_latency = 0.01;
  // Throughput study, not a liveness one: park the timers so a saturated
  // single-core replica is measured instead of view-changed.
  opt.replica.request_timeout = 30.0;
  opt.replica.view_change_timeout = 45.0;
  opt.replica.batch_size = 8;
  opt.replica.cost_model = model;
  opt.replica.crypto_workers = workers;
  opt.seed = seed;
  return opt;
}

struct RunResult {
  std::vector<ExecutedEntry> log;
  double span = 0.0;
  std::uint64_t verify_tasks = 0;
};

RunResult run_cluster(crypto::CostModel model, std::size_t workers,
                      int requests = 64) {
  BftCluster cluster(4, crypto_options(7, model, workers));
  for (int i = 0; i < requests; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(
      static_cast<std::size_t>(requests), 120.0));
  EXPECT_TRUE(cluster.logs_consistent());
  return RunResult{cluster.replica(1).executed(),
                   cluster.last_completion_time(),
                   cluster.verify_tasks()};
}

/// Cross-configuration comparisons work at agreement level: charging CPU
/// time shifts *when* requests reach the primary's batcher, so batch
/// composition (and hence the exact log) legitimately differs between
/// cost models and worker counts. What must not differ is *what* was
/// agreed: the set of executed request ids.
std::vector<std::uint64_t> executed_ids(
    const std::vector<ExecutedEntry>& log) {
  std::vector<std::uint64_t> ids;
  ids.reserve(log.size());
  for (const ExecutedEntry& e : log) ids.push_back(e.request.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(BftCrypto, FreeModelBuildsNoPoolAndWorkerKnobIsInert) {
  // Bit-identity of crypto=free across worker counts: the pool is never
  // built, so the executed log and every completion time are exactly the
  // single-core run's. This is the in-process half of the CI inertness
  // cmp (which additionally diffs whole catalog outputs).
  const RunResult w1 = run_cluster(crypto::CostModel::free(), 1);
  const RunResult w8 = run_cluster(crypto::CostModel::free(), 8);
  EXPECT_EQ(w1.verify_tasks, 0u);
  EXPECT_EQ(w8.verify_tasks, 0u);
  EXPECT_EQ(w1.log, w8.log);
  EXPECT_EQ(w1.span, w8.span);  // exact, not approximate
}

TEST(BftCrypto, ModeledCostSlowsTheRunAndOffloadsVerification) {
  // A deliberately heavy model (≈40× Ed25519) so CPU time dominates the
  // network latency decisively; with realistic figures the sign delay can
  // *speed up* short runs by packing fuller batches.
  const crypto::CostModel heavy{.sign_ns = 2.0e6,
                                .verify_ns = 5.0e6,
                                .batch_verify_base_ns = 1.0e6,
                                .batch_verify_item_ns = 2.5e6};
  const RunResult free_run = run_cluster(crypto::CostModel::free(), 1);
  const RunResult modeled = run_cluster(heavy, 1);
  EXPECT_GT(modeled.verify_tasks, 0u);
  EXPECT_GT(modeled.span, free_run.span);
  // Charging CPU time must not change *what* is agreed, only when.
  EXPECT_EQ(executed_ids(modeled.log), executed_ids(free_run.log));
}

TEST(BftCrypto, MoreWorkersRecoverThroughput) {
  const RunResult w1 = run_cluster(crypto::CostModel::modeled(), 1, 256);
  const RunResult w8 = run_cluster(crypto::CostModel::modeled(), 8, 256);
  EXPECT_LT(w8.span, w1.span);
  // Same agreement, different clock (and so different batch packing).
  EXPECT_EQ(executed_ids(w1.log), executed_ids(w8.log));
}

TEST(BftCrypto, ModeledRunsAreDeterministic) {
  const RunResult a = run_cluster(crypto::CostModel::modeled(), 4);
  const RunResult b = run_cluster(crypto::CostModel::modeled(), 4);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.verify_tasks, b.verify_tasks);
}

TEST(BftCrypto, RejectsZeroWorkers) {
  EXPECT_THROW(
      BftCluster(4, crypto_options(1, crypto::CostModel::modeled(), 0)),
      support::ContractViolation);
}

}  // namespace
}  // namespace findep::bft
