// Primary flow control: the high-watermark window bounds how far
// next_seq_ may run ahead of the stable checkpoint. A burst that would
// outrun a tight window must be deferred (not dropped), resume as
// checkpoints advance, and never cost a view change; the default window
// must never bite in a healthy run.
#include <gtest/gtest.h>

#include <set>

#include "bft/cluster.h"
#include "support/assert.h"

namespace findep::bft {
namespace {

ClusterOptions fast_options(std::uint64_t seed = 1) {
  ClusterOptions opt;
  opt.network.min_latency = 0.005;
  opt.network.mean_extra_latency = 0.01;
  opt.replica.request_timeout = 0.8;
  opt.replica.view_change_timeout = 1.2;
  opt.seed = seed;
  return opt;
}

std::set<std::uint64_t> executed_ids(const Replica& replica) {
  std::set<std::uint64_t> ids;
  for (const ExecutedEntry& e : replica.executed()) {
    if (e.request.id != 0) ids.insert(e.request.id);
  }
  return ids;
}

TEST(BftWatermark, BurstBeyondWindowDefersThenCommitsEverything) {
  // 20 requests against window 4 / checkpoint interval 2: the primary
  // may propose at most 4 slots beyond stability, so the burst must
  // back-pressure at least once, then drain as checkpoints certify.
  ClusterOptions opt = fast_options(61);
  opt.replica.checkpoint_interval = 2;
  opt.replica.high_watermark_window = 4;
  BftCluster cluster(4, opt);
  for (int i = 0; i < 20; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(20, 60.0));
  EXPECT_TRUE(cluster.logs_consistent());

  std::set<std::uint64_t> want;
  for (std::uint64_t i = 1; i <= 20; ++i) want.insert(i);
  EXPECT_EQ(executed_ids(cluster.replica(2)), want);

  // The window bit (the whole point of the tight configuration)...
  EXPECT_GT(cluster.replica(0).proposals_deferred(), 0u);
  // ...but back-pressure is not a fault: nobody escalated to a view
  // change while the primary was waiting out its checkpoint quorum.
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.replica(r).view(), 0u);
    EXPECT_EQ(cluster.replica(r).view_changes_started(), 0u);
  }
}

TEST(BftWatermark, DefaultWindowNeverBitesInHealthyRun) {
  // The default window exists for pathological checkpoint stalls; a
  // normal burst must sail through with zero deferrals (and therefore
  // byte-identical sweep counters to the pre-watermark protocol).
  ClusterOptions opt = fast_options(62);
  BftCluster cluster(4, opt);
  for (int i = 0; i < 24; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(24, 60.0));
  EXPECT_TRUE(cluster.logs_consistent());
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.replica(r).proposals_deferred(), 0u);
  }
}

TEST(BftWatermark, RejectsWindowTighterThanTwoCheckpointIntervals) {
  // Execution legitimately runs up to an interval ahead of stability;
  // a window below 2x would throttle a healthy primary.
  ClusterOptions opt = fast_options(63);
  opt.replica.checkpoint_interval = 4;
  opt.replica.high_watermark_window = 7;
  EXPECT_THROW(BftCluster(4, opt), support::ContractViolation);
}

}  // namespace
}  // namespace findep::bft
