// Propositions 1–3 verified over parameter sweeps (the paper states them
// informally; these tests are the executable versions).
#include <gtest/gtest.h>

#include <cmath>

#include "diversity/metrics.h"
#include "diversity/propositions.h"
#include "support/assert.h"
#include "support/rng.h"

namespace findep::diversity {
namespace {

TEST(Prop1, UniformGrowthPreservesEntropy) {
  const ConfigDistribution base = ConfigDistribution::uniform(8);
  const std::vector<double> growth(8, 3.0);
  const Prop1Result r = check_proposition1(base, growth);
  EXPECT_TRUE(r.relative_abundance_preserved);
  EXPECT_NEAR(r.entropy_after, r.entropy_before, 1e-9);
  EXPECT_TRUE(r.holds());
}

TEST(Prop1, SkewedGrowthStrictlyDecreasesEntropy) {
  const ConfigDistribution base = ConfigDistribution::uniform(8);
  std::vector<double> growth(8, 1.0);
  growth[0] = 10.0;  // one configuration balloons
  const Prop1Result r = check_proposition1(base, growth);
  EXPECT_FALSE(r.relative_abundance_preserved);
  EXPECT_LT(r.entropy_after, r.entropy_before);
  EXPECT_TRUE(r.holds());
}

TEST(Prop1, RequiresKappaOptimalStart) {
  const ConfigDistribution skewed = ConfigDistribution::from_shares(
      std::vector<double>{0.7, 0.3});
  EXPECT_THROW(
      (void)check_proposition1(skewed, std::vector<double>{1.0, 2.0}),
      support::ContractViolation);
}

TEST(Prop1, RejectsShrinkingGrowth) {
  const ConfigDistribution base = ConfigDistribution::uniform(4);
  EXPECT_THROW((void)check_proposition1(
                   base, std::vector<double>{1.0, 1.0, 1.0, 0.5}),
               support::ContractViolation);
}

class Prop1Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Prop1Sweep, HoldsForRandomGrowthVectors) {
  support::Rng rng(GetParam());
  const std::size_t k = 2 + rng.below(24);
  const ConfigDistribution base = ConfigDistribution::uniform(k);
  std::vector<double> growth(k);
  for (auto& g : growth) g = 1.0 + rng.uniform(0.0, 9.0);
  const Prop1Result r = check_proposition1(base, growth);
  EXPECT_TRUE(r.holds()) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop1Sweep,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(Prop2, DustReplicasBarelyMoveEntropy) {
  // 17-config oligopoly plus 100 dust configs: entropy gap to the new
  // optimum stays large — "more replicas ≠ more resilience".
  const ConfigDistribution base = ConfigDistribution::from_shares(
      std::vector<double>{0.35, 0.20, 0.13, 0.11, 0.09, 0.03, 0.02, 0.02,
                          0.01, 0.01, 0.01, 0.01, 0.01});
  const std::vector<double> dust(100, 0.0087 / 100.0);
  const Prop2Result r = check_proposition2(base, dust);
  EXPECT_LT(r.entropy_after - r.entropy_before, 0.2);
  EXPECT_GT(r.max_entropy_after, 6.0);  // log2(113) ≈ 6.8
  EXPECT_GT(r.gap_after(), 3.0);        // far from optimal
}

TEST(Prop2, UniformExtensionReachesOptimum) {
  // If relative abundances stay identical (all uniform), more replicas DO
  // help — the proposition's "unless" clause.
  const ConfigDistribution base = ConfigDistribution::uniform(4);
  // Add 4 more configs, each at 1/8 of the new total; old ones shrink to
  // 1/8 as well.
  const std::vector<double> added(4, 1.0 / 8.0);
  const Prop2Result r = check_proposition2(base, added);
  EXPECT_NEAR(r.entropy_after, 3.0, 1e-9);
  EXPECT_NEAR(r.gap_after(), 0.0, 1e-9);
  EXPECT_GT(r.entropy_after, r.entropy_before);
}

TEST(Prop2, RejectsOverfullAddedShares) {
  const ConfigDistribution base = ConfigDistribution::uniform(2);
  EXPECT_THROW(
      (void)check_proposition2(base, std::vector<double>{0.6, 0.6}),
      support::ContractViolation);
}

class Prop2Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Prop2Sweep, EntropyNeverExceedsLog2K) {
  support::Rng rng(GetParam());
  const std::size_t k = 2 + rng.below(16);
  std::vector<double> shares(k);
  for (auto& s : shares) s = rng.uniform(0.01, 1.0);
  const ConfigDistribution base = ConfigDistribution::from_shares(shares);
  const std::size_t extra = 1 + rng.below(32);
  std::vector<double> added(extra);
  double budget = 0.5;
  for (auto& a : added) {
    a = rng.uniform(0.0, budget / static_cast<double>(extra));
  }
  const Prop2Result r = check_proposition2(base, added);
  EXPECT_LE(r.entropy_after, r.max_entropy_after + 1e-9);
  EXPECT_GE(r.gap_after(), -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop2Sweep,
                         ::testing::Range<std::uint64_t>(1, 33));

TEST(Prop3, OperatorFractionShrinksWithOmega) {
  const Prop3Result w1 = analyze_proposition3(10, 1);
  const Prop3Result w4 = analyze_proposition3(10, 4);
  EXPECT_DOUBLE_EQ(w1.operator_fraction, 0.1);
  EXPECT_DOUBLE_EQ(w4.operator_fraction, 0.025);
  // Vulnerability compromise does not improve with abundance.
  EXPECT_DOUBLE_EQ(w1.vulnerability_fraction, w4.vulnerability_fraction);
}

TEST(Prop3, MessageCostGrowsQuadratically) {
  const Prop3Result a = analyze_proposition3(8, 1);
  const Prop3Result b = analyze_proposition3(8, 2);
  EXPECT_DOUBLE_EQ(b.relative_message_cost / a.relative_message_cost, 4.0);
}

TEST(Prop3, RejectsZeroArguments) {
  EXPECT_THROW((void)analyze_proposition3(0, 1),
               support::ContractViolation);
  EXPECT_THROW((void)analyze_proposition3(1, 0),
               support::ContractViolation);
}

class Prop3Sweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(Prop3Sweep, OperatorAdvantageIsExactlyOmega) {
  const auto [kappa, omega] = GetParam();
  const Prop3Result r = analyze_proposition3(kappa, omega);
  EXPECT_NEAR(r.vulnerability_fraction / r.operator_fraction,
              static_cast<double>(omega), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Prop3Sweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 8, 16, 32),
                       ::testing::Values<std::size_t>(1, 2, 4, 8)));

}  // namespace
}  // namespace findep::diversity
