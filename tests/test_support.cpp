// Unit tests for the support library: contracts, RNG, statistics, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/assert.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace findep::support {
namespace {

TEST(Contracts, RequireThrowsWithLocation) {
  try {
    FINDEP_REQUIRE_MSG(1 == 2, "impossible");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_STREQ(e.kind(), "precondition");
    EXPECT_NE(std::string(e.what()).find("impossible"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Contracts, EnsureAndAssertKinds) {
  EXPECT_THROW(FINDEP_ENSURE(false), ContractViolation);
  EXPECT_THROW(FINDEP_ASSERT(false), ContractViolation);
  EXPECT_NO_THROW(FINDEP_REQUIRE(true));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a(), b());
  Rng a2(123);
  EXPECT_NE(a2(), c());
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(7);
  Rng child1 = parent.fork(1);
  Rng parent2(7);
  Rng child2 = parent2.fork(2);
  EXPECT_NE(child1(), child2());
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(2);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BelowIsUniform) {
  Rng rng(3);
  std::array<int, 5> buckets{};
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    ++buckets[rng.below(5)];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, kN / 5, kN / 50);
  }
}

TEST(Rng, BelowRejectsZero) {
  Rng rng(4);
  EXPECT_THROW((void)rng.below(0), ContractViolation);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdges) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
  EXPECT_THROW((void)rng.chance(1.5), ContractViolation);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(9);
  double small_sum = 0.0, large_sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    small_sum += static_cast<double>(rng.poisson(3.0));
    large_sum += static_cast<double>(rng.poisson(100.0));
  }
  EXPECT_NEAR(small_sum / kN, 3.0, 0.1);
  EXPECT_NEAR(large_sum / kN, 100.0, 1.0);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(10);
  const std::array<double, 3> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0], kN / 4, kN / 40);
  EXPECT_NEAR(counts[2], 3 * kN / 4, kN / 40);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng(11);
  const std::array<double, 2> zero = {0.0, 0.0};
  EXPECT_THROW((void)rng.categorical(zero), ContractViolation);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng rng(12);
  std::array<int, 4> counts{};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.zipf(4, 0.0)];
  for (const int count : counts) EXPECT_NEAR(count, kN / 4, kN / 40);
}

TEST(Rng, ZipfSkewFavorsLowRanks) {
  Rng rng(13);
  std::array<int, 4> counts{};
  for (int i = 0; i < 40000; ++i) ++counts[rng.zipf(4, 1.5)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[3]);
}

TEST(Rng, SampleIndicesDistinctAndComplete) {
  Rng rng(14);
  for (int trial = 0; trial < 100; ++trial) {
    const auto picked = rng.sample_indices(10, 4);
    ASSERT_EQ(picked.size(), 4u);
    for (std::size_t i = 0; i < picked.size(); ++i) {
      EXPECT_LT(picked[i], 10u);
      for (std::size_t j = i + 1; j < picked.size(); ++j) {
        EXPECT_NE(picked[i], picked[j]);
      }
    }
  }
  const auto everything = rng.sample_indices(5, 5);
  EXPECT_EQ(everything.size(), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (const double x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), 6.2);
  EXPECT_NEAR(stats.variance(), 37.2, 1e-9);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 16.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a, b, all;
  Rng rng(16);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(0, 1);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 2.5);
}

TEST(Stats, MeanOf) {
  const std::vector<double> values = {2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(values), 3.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.6);
  h.add(-5.0);  // clamps into first
  h.add(5.0);   // clamps into last
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_in(0), 2u);
  EXPECT_EQ(h.count_in(2), 1u);
  EXPECT_EQ(h.count_in(3), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_low(2), 0.5);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Table, AlignedAndCsvOutput) {
  Table t({"name", "value"});
  t.add(std::string("alpha"), 1.5);
  t.add(std::string("b"), std::size_t{42});
  EXPECT_EQ(t.row_count(), 2u);

  std::ostringstream aligned;
  t.print(aligned);
  EXPECT_NE(aligned.str().find("alpha"), std::string::npos);

  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("alpha,1.5"), std::string::npos);
  EXPECT_NE(csv.str().find("b,42"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

}  // namespace
}  // namespace findep::support
