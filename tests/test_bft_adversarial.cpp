// Adversarial and edge-case PBFT tests: network-level attacks (partition,
// targeted delay/drop), forged protocol messages, weighted equivocators,
// and recovery dynamics beyond the happy paths of test_bft.cpp.
#include <gtest/gtest.h>

#include "bft/cluster.h"
#include "support/assert.h"

namespace findep::bft {
namespace {

ClusterOptions fast_options(std::uint64_t seed = 1) {
  ClusterOptions opt;
  opt.network.min_latency = 0.005;
  opt.network.mean_extra_latency = 0.01;
  opt.replica.request_timeout = 0.8;
  opt.replica.view_change_timeout = 1.2;
  opt.seed = seed;
  return opt;
}

/// Real (non-noop) executions of one replica.
std::size_t real_executed(const Replica& replica) {
  std::size_t count = 0;
  for (const ExecutedEntry& e : replica.executed()) {
    if (e.request.id != 0) ++count;
  }
  return count;
}

/// Number of replicas that executed at least `target` real requests.
std::size_t replicas_at(const BftCluster& cluster, std::size_t target) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (real_executed(cluster.replica(i)) >= target) ++count;
  }
  return count;
}

TEST(BftAdversarial, PartitionStallsThenHeals) {
  BftCluster cluster(4, fast_options(21));
  // Cut replica 3 off; the 3 connected replicas still form a quorum and
  // make progress; the partitioned one cannot (no state transfer).
  cluster.network().set_partition_group(3, 1);
  cluster.submit();
  cluster.run_for(20.0);
  EXPECT_GE(replicas_at(cluster, 1), 3u);
  EXPECT_EQ(real_executed(cluster.replica(3)), 0u);
  EXPECT_TRUE(cluster.logs_consistent());

  // Now cut a second replica: only 2 of 4 connected — no quorum, the new
  // request stalls everywhere.
  cluster.network().set_partition_group(2, 2);
  cluster.submit();
  cluster.run_for(20.0);
  EXPECT_EQ(replicas_at(cluster, 2), 0u);
  EXPECT_TRUE(cluster.logs_consistent());

  // Heal: the pending request commits on (at least) a quorum.
  cluster.network().heal_partitions();
  cluster.run_for(120.0);
  EXPECT_GE(replicas_at(cluster, 2), 3u);
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(BftAdversarial, AdversarialLinkDropAgainstOneReplica) {
  // The adversary drops everything TO replica 2 (it can still send).
  // n = 4 tolerates one such isolated replica: the other three commit.
  BftCluster cluster(4, fast_options(22));
  cluster.network().set_filter(
      [](net::NodeId, net::NodeId to) { return to != 2; });
  for (int i = 0; i < 3; ++i) cluster.submit();
  cluster.run_for(60.0);
  EXPECT_GE(replicas_at(cluster, 3), 3u);
  EXPECT_EQ(real_executed(cluster.replica(2)), 0u);
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(BftAdversarial, AdversarialDelayOnlySlowsDown) {
  // §II-B: the attacker may arbitrarily delay messages. Half a second on
  // every link of one replica must not break safety or liveness (the
  // other three carry the quorum).
  BftCluster cluster(4, fast_options(23));
  cluster.network().set_delay_policy([](net::NodeId from, net::NodeId to) {
    return (from == 1 || to == 1) ? 0.5 : 0.0;
  });
  for (int i = 0; i < 3; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(3, 60.0));
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(BftAdversarial, ForgedEnvelopeIsIgnored) {
  BftCluster cluster(4, fast_options(24));
  // An outsider injects a PrePrepare claiming to be replica 0 (the
  // primary) but signed with a key that is not in the directory.
  crypto::KeyPair outsider = crypto::KeyPair::derive(999999);
  Request forged_request{77, crypto::sha256("forged-op")};
  Envelope forged = make_envelope(/*sender=*/0, outsider,
                                  PrePrepare{0, 1, Batch{{forged_request}}});
  for (net::NodeId r = 0; r < 4; ++r) {
    cluster.network().send(0, r, forged, 256);
  }
  cluster.run_for(5.0);
  // Nothing executed: the forged pre-prepare must not start consensus.
  EXPECT_EQ(cluster.min_honest_executed(), 0u);

  // And the cluster still works normally afterwards.
  cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(1, 30.0));
}

TEST(BftAdversarial, OutsiderCannotSendProtocolMessages) {
  BftCluster cluster(4, fast_options(25));
  // A *valid* key, but sender id beyond the directory: protocol messages
  // (non-Request) from clients must be ignored.
  crypto::KeyPair client = crypto::KeyPair::derive(424242);
  // Enroll via a fresh cluster-side path: the registry only holds cluster
  // keys, so verification fails regardless; this asserts no crash and no
  // progress from garbage.
  Envelope env = make_envelope(/*sender=*/17, client,
                               Commit{0, 1, crypto::sha256("x")});
  for (net::NodeId r = 0; r < 4; ++r) {
    cluster.network().send(17, r, env, 256);
  }
  cluster.run_for(2.0);
  EXPECT_EQ(cluster.min_honest_executed(), 0u);
}

TEST(BftAdversarial, WeightedEquivocatorBelowThirdIsHarmless) {
  // The equivocating primary holds 30% of power (< 1/3): after its view
  // is changed away, the remaining 70% commits everything.
  std::vector<double> weights = {3.0, 2.0, 2.5, 2.5};
  std::vector<Behavior> behaviors = {Behavior::kEquivocate,
                                     Behavior::kHonest, Behavior::kHonest,
                                     Behavior::kHonest};
  BftCluster cluster(weights, fast_options(26), behaviors);
  for (int i = 0; i < 3; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(3, 90.0));
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(BftAdversarial, HeavySilentMajorityStallsForever) {
  // 40% silent weight > 1/3: permanent stall, but logs stay consistent —
  // exactly the safety-vs-liveness split the paper's f bound encodes.
  std::vector<double> weights = {4.0, 2.0, 2.0, 2.0};
  std::vector<Behavior> behaviors = {Behavior::kSilent, Behavior::kHonest,
                                     Behavior::kHonest, Behavior::kHonest};
  BftCluster cluster(weights, fast_options(27), behaviors);
  cluster.submit();
  EXPECT_FALSE(cluster.run_until_executed(1, 30.0));
  EXPECT_TRUE(cluster.logs_consistent());
  // View changes happened (liveness attempts) but could not assemble.
  bool attempted = false;
  for (std::size_t i = 1; i < 4; ++i) {
    attempted |= cluster.replica(i).view_changes_started() > 0;
  }
  EXPECT_TRUE(attempted);
}

TEST(BftAdversarial, LateJoinerCatchesUpViaBufferedMessages) {
  // A replica whose inbound links are delayed by more than a view-change
  // round still converges thanks to future-view message buffering.
  BftCluster cluster(7, fast_options(28));
  cluster.network().set_delay_policy([](net::NodeId, net::NodeId to) {
    return to == 6 ? 0.4 : 0.0;  // replica 6 lags behind everyone
  });
  for (int i = 0; i < 5; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(5, 60.0));
  cluster.run_for(10.0);  // let the laggard drain its queue
  EXPECT_TRUE(cluster.logs_consistent());
  // The laggard really executed (not just the quorum without it).
  std::size_t real = 0;
  for (const ExecutedEntry& e : cluster.replica(6).executed()) {
    if (e.request.id != 0) ++real;
  }
  EXPECT_GE(real, 5u);
}

TEST(BftAdversarial, ContinuousLoadAcrossAViewChange) {
  // Requests keep arriving while the primary dies mid-stream; everything
  // submitted must eventually execute exactly once.
  std::vector<Behavior> behaviors(4, Behavior::kHonest);
  behaviors[0] = Behavior::kSilent;
  BftCluster cluster(4, fast_options(29), behaviors);
  for (int wave = 0; wave < 4; ++wave) {
    for (int i = 0; i < 3; ++i) cluster.submit();
    cluster.run_for(1.0);
  }
  EXPECT_TRUE(cluster.run_until_executed(12, 120.0));
  EXPECT_TRUE(cluster.logs_consistent());
  // Exactly-once: no honest log contains a client request id twice.
  const auto& log = cluster.replica(1).executed();
  std::set<std::uint64_t> seen;
  for (const ExecutedEntry& e : log) {
    if (e.request.id == 0) continue;
    EXPECT_TRUE(seen.insert(e.request.id).second)
        << "duplicate execution of request " << e.request.id;
  }
}

TEST(BftAdversarial, EquivocatingPrimaryConflictingBatches) {
  // The equivocating primary now forges whole *batches*: conflicting
  // 4-request blocks for the same sequence number to the two halves of
  // the cluster. Neither half can certify a conflicting pair, the view
  // change evicts the equivocator, and every real request still commits
  // exactly once.
  ClusterOptions opt = fast_options(31);
  opt.replica.batch_size = 4;
  std::vector<Behavior> behaviors(4, Behavior::kHonest);
  behaviors[0] = Behavior::kEquivocate;
  BftCluster cluster(4, opt, behaviors);
  for (int i = 0; i < 8; ++i) cluster.submit();
  EXPECT_TRUE(cluster.run_until_executed(8, 120.0));
  EXPECT_TRUE(cluster.logs_consistent());
  // Exactly-once at request granularity despite batch-level equivocation.
  std::set<std::uint64_t> seen;
  for (const ExecutedEntry& e : cluster.replica(1).executed()) {
    if (e.request.id == 0) continue;
    EXPECT_TRUE(seen.insert(e.request.id).second)
        << "duplicate execution of request " << e.request.id;
  }
}

TEST(BftAdversarial, ViewChangeCarriesBatchPreparedOnMinority) {
  // Engineer a batch that reaches a prepared certificate on exactly one
  // replica (a minority), then force a view change: the prepared batch
  // must survive into the new view whole and commit everywhere.
  //
  // Link plan (n = 4, primary 0): the pre-prepare reaches 1 and 2; only
  // replica 1 hears replica 2's prepare. Prepare votes — at 1:
  // {0 (pre-prepare), 1, 2} = 3/4 weight -> prepared; at 0: {0} only; at
  // 2: {0, 2}; at 3: nothing. Commits cannot assemble anywhere.
  ClusterOptions opt = fast_options(32);
  opt.replica.batch_size = 3;
  opt.replica.batch_timeout = 0.3;  // cut by size, not timer
  BftCluster cluster(4, opt);
  cluster.network().set_filter([](net::NodeId from, net::NodeId to) {
    if (from >= 4) return true;  // the client reaches everyone
    if (from == 0 && (to == 1 || to == 2)) return true;
    if (from == 2 && to == 1) return true;
    return false;
  });
  for (int i = 0; i < 3; ++i) cluster.submit();
  cluster.run_for(0.6);
  EXPECT_EQ(cluster.min_honest_executed(), 0u);  // nothing committed yet

  // Heal before the request timers (0.8 s) fire, so the view change that
  // follows runs over a working network. The new primary is replica 1 —
  // precisely the minority holder of the prepared batch — and must
  // re-propose it via its own view-change entry.
  cluster.network().set_filter(nullptr);
  EXPECT_TRUE(cluster.run_until_executed(3, 120.0));
  EXPECT_TRUE(cluster.logs_consistent());
  bool advanced = false;
  for (std::size_t i = 0; i < 4; ++i) {
    advanced |= cluster.replica(i).view() > 0;
  }
  EXPECT_TRUE(advanced);
  // Replica 3 never saw the original pre-prepare; it can only have the
  // requests via the re-proposed batch.
  std::set<std::uint64_t> ids;
  for (const ExecutedEntry& e : cluster.replica(3).executed()) {
    if (e.request.id != 0) ids.insert(e.request.id);
  }
  EXPECT_EQ(ids, (std::set<std::uint64_t>{1, 2, 3}));
}

TEST(BftAdversarial, DuplicateRequestInBatchesExecutesOnce) {
  // A Byzantine primary repeats one request — twice inside a single
  // batch and again in the next batch. Dedup must hold across batch
  // boundaries: every honest replica executes the request exactly once.
  //
  // The injected pre-prepares are signed with replica 0's real key
  // (derived exactly as the cluster derives it), so they pass
  // authentication — this is the primary misbehaving, not an outsider.
  ClusterOptions opt = fast_options(33);
  BftCluster cluster(4, opt);
  const crypto::KeyPair primary_keys =
      crypto::KeyPair::derive(opt.seed * 1000003 + 0);
  const Request r{500, crypto::sha256("dup-op")};
  const Request other{501, crypto::sha256("other-op")};
  const Envelope first =
      make_envelope(0, primary_keys, PrePrepare{0, 1, Batch{{r, r, other}}});
  const Envelope second =
      make_envelope(0, primary_keys, PrePrepare{0, 2, Batch{{r}}});
  for (net::NodeId to = 0; to < 4; ++to) {
    cluster.network().send(0, to, first, 512);
    cluster.network().send(0, to, second, 512);
  }
  cluster.run_for(10.0);
  EXPECT_TRUE(cluster.logs_consistent());
  for (std::size_t i = 0; i < 4; ++i) {
    std::size_t dup_count = 0;
    std::size_t other_count = 0;
    for (const ExecutedEntry& e : cluster.replica(i).executed()) {
      if (e.request.id == 500) ++dup_count;
      if (e.request.id == 501) ++other_count;
    }
    EXPECT_EQ(dup_count, 1u) << "replica " << i;
    EXPECT_EQ(other_count, 1u) << "replica " << i;
    EXPECT_GE(cluster.replica(i).last_executed(), 2u) << "replica " << i;
  }
}

TEST(BftAdversarial, CensoringPrimaryCaughtDespiteSustainedProgress) {
  // Client-selective starvation: the primary serves even-id requests
  // promptly and silently drops odd-id ones. Even traffic keeps arriving
  // faster than request_timeout, so a liveness timer that resets on *any*
  // progress never fires and the censored clients starve forever — the
  // exact hole the per-request deadlines close. Each pending request now
  // carries its own arrival-based deadline, so the first odd request
  // trips a view change within one request_timeout regardless of how
  // much unrelated traffic commits, and the honest new primary re-drives
  // everything.
  std::vector<Behavior> behaviors(4, Behavior::kHonest);
  behaviors[0] = Behavior::kCensor;
  BftCluster cluster(4, fast_options(34), behaviors);
  std::size_t submitted = 0;
  for (int wave = 0; wave < 10; ++wave) {
    // submit() ids count up from 1: every wave is one censored (odd) and
    // one served (even) request, 0.5 s apart — well inside the 0.8 s
    // request_timeout, so the old any-progress reset would never expire.
    cluster.submit();
    cluster.submit();
    submitted += 2;
    cluster.run_for(0.5);
  }
  EXPECT_TRUE(cluster.run_until_executed(submitted, 60.0));
  EXPECT_TRUE(cluster.logs_consistent());
  bool evicted = false;
  for (std::size_t i = 1; i < 4; ++i) {
    evicted |= cluster.replica(i).view() > 0;
  }
  EXPECT_TRUE(evicted) << "censorship never triggered a view change";
}

TEST(BftAdversarial, ColludingCoalitionAboveThirdViolatesSafety) {
  // The paper's safety threshold, demonstrated from the violating side:
  // a colluding coalition holding > W/3 endorses *both* halves of an
  // equivocation, handing each honest partition a full commit
  // certificate for its own digest. Coalition: the primary (weight 2)
  // plus backup 1 (weight 2) = 4 of W = 7 > W/3. The equivocation split
  // sends the real batch to even ids {2, 4} and the forged one to odd
  // ids {1, 3}; with coalition weight behind both digests, replicas
  // {2, 4} commit the real batch while {3} commits the forged one.
  std::vector<double> weights = {2.0, 2.0, 1.0, 1.0, 1.0};
  std::vector<Behavior> behaviors = {Behavior::kCollude, Behavior::kCollude,
                                     Behavior::kHonest, Behavior::kHonest,
                                     Behavior::kHonest};
  BftCluster cluster(weights, fast_options(35), behaviors);
  cluster.submit();
  cluster.run_for(30.0);
  EXPECT_GE(cluster.max_honest_last_executed(), 1u);
  EXPECT_FALSE(cluster.logs_consistent())
      << "conflicting commit certificates should have diverged the logs";
}

TEST(BftAdversarial, ColludingCoalitionBelowThirdStaysSafe) {
  // Same attack, coalition at exactly 1/4 < 1/3: endorsing both digests
  // cannot complete a *conflicting certificate pair* (the two quorums
  // would have to share honest weight — the c > W/3 derivation in
  // replica.h). One half may still commit — with the colluder's weight a
  // single digest can reach quorum, forged requests and all, stranding
  // the other half's replica behind a conflicting prepared certificate —
  // but that is a liveness wound, not a safety one: every client request
  // still completes and no two honest logs ever disagree on a sequence
  // number.
  std::vector<Behavior> behaviors(4, Behavior::kHonest);
  behaviors[0] = Behavior::kCollude;
  BftCluster cluster(4, fast_options(36), behaviors);
  for (int i = 0; i < 3; ++i) cluster.submit();
  cluster.run_for(90.0);
  EXPECT_EQ(cluster.completed_requests(), 3u);
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(BftAdversarial, CorruptedLinksAreRejectedAndCounted) {
  // Bit-flips on one replica's inbound links: every corrupted delivery
  // is rejected at the signature check and counted, never dispatched.
  // The other three replicas carry consensus; the victim contributes
  // nothing but stays safe.
  BftCluster cluster(4, fast_options(37));
  cluster.network().set_corrupt_policy(
      [](net::NodeId, net::NodeId to) { return to == 2; });
  for (int i = 0; i < 3; ++i) cluster.submit();
  cluster.run_for(60.0);
  EXPECT_GE(replicas_at(cluster, 3), 3u);
  EXPECT_TRUE(cluster.logs_consistent());
  EXPECT_GT(cluster.replica(2).corrupted_rejected(), 0u);
  EXPECT_EQ(cluster.network().stats().messages_corrupted,
            cluster.replica(2).corrupted_rejected());
}

TEST(BftAdversarial, CrashedNodeDropsTrafficUntilRestart) {
  // set_node_down models a crash at the network layer: the node neither
  // sends nor receives while down (including messages already in
  // flight). With only 2 of 4 replicas up nothing can commit; restarting
  // the crashed pair restores the quorum and the stalled request
  // executes. The crashed replicas kept their in-memory state (this is
  // the network hook, not a process restart), so no state transfer is
  // required for them to rejoin.
  BftCluster cluster(4, fast_options(38));
  cluster.network().set_node_down(2, true);
  cluster.network().set_node_down(3, true);
  cluster.submit();
  cluster.run_for(20.0);
  EXPECT_EQ(cluster.min_honest_executed(), 0u);

  cluster.network().set_node_down(2, false);
  cluster.network().set_node_down(3, false);
  EXPECT_TRUE(cluster.run_until_executed(1, 120.0));
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(BftAdversarial, LossyNetworkQuorumStillCommits) {
  // 20% uniform message loss: without retransmission/state transfer,
  // replicas that miss messages may lag with execution gaps (documented
  // limitation) — they still contribute votes, so the *cluster* keeps
  // committing. Assert that at least two replicas executed everything
  // (evidence of commit quorums: commits need >2/3 weight of voters) and
  // that safety held throughout.
  ClusterOptions opt = fast_options(30);
  opt.network.drop_probability = 0.20;
  opt.replica.request_timeout = 0.5;
  BftCluster cluster(4, opt);
  for (int i = 0; i < 3; ++i) cluster.submit();
  cluster.run_for(240.0);
  EXPECT_GE(replicas_at(cluster, 3), 2u);
  EXPECT_TRUE(cluster.logs_consistent());
}

}  // namespace
}  // namespace findep::bft
