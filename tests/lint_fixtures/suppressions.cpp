// Fixture: suppression mechanics — honored, malformed, wrong-rule,
// unused.
#include <chrono>
#include <unordered_map>

namespace fixture {

std::unordered_map<int, int> table;

double cases() {
  double total = 0.0;

  // findep-lint: allow(wall-clock) -- fixture: sanctioned measured-timing read
  const auto honored = std::chrono::steady_clock::now();

  // findep-lint: allow(wall-clock)
  const auto missing_why = std::chrono::steady_clock::now();  // line 17

  // findep-lint: allow(unordered-iteration) -- wrong rule for this line
  const auto wrong_rule = std::chrono::steady_clock::now();  // line 20

  // findep-lint: allow(no-such-rule) -- rule name does not exist
  const auto unknown_rule = std::chrono::steady_clock::now();  // line 23

  // findep-lint: allow(ambient-rng) -- fixture: nothing to suppress here (stale)
  total += 1.0;

  total += std::chrono::duration<double>(honored - missing_why).count();
  total += std::chrono::duration<double>(wrong_rule - unknown_rule).count();
  return total;
}

}  // namespace fixture
