// Fixture: wall-clock rule. Deliberate violations — this directory is
// excluded from the lint_tree gate and scanned only by test_lint.
#include <chrono>
#include <ctime>

namespace fixture {

struct FakeSim {
  double time_ = 0.0;
  // findep-lint: allow(wall-clock) -- simulated-time accessor happens to be named time(); declaration, not a clock read
  double time() const { return time_; }
};

double violations() {
  const auto a = std::chrono::steady_clock::now();           // line 15
  const auto b = std::chrono::system_clock::now();           // line 16
  const auto c = std::chrono::high_resolution_clock::now();  // line 17
  const std::time_t d = std::time(nullptr);                  // line 18
  FakeSim sim;
  const double ok = sim.time();  // member access: clean, no suppression
  return static_cast<double>(d) + ok +
         std::chrono::duration<double>(a - b).count() +
         std::chrono::duration<double>(c.time_since_epoch()).count();
}

}  // namespace fixture
