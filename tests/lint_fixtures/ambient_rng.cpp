// Fixture: ambient-rng rule. Deliberate violations.
#include <cstdlib>
#include <random>

namespace fixture {

unsigned violations(std::uint64_t seed) {
  const int a = rand();                  // line 8: ambient global RNG
  std::random_device entropy;            // line 9: entropy outside seeds
  std::mt19937 unseeded;                 // line 10: fixed default seed
  std::mt19937 temp = std::mt19937();    // line 11: default-constructed
  std::mt19937 seeded(seed);             // clean: seeded from the chain
  std::mt19937 braced{seed};             // clean: seeded from the chain
  return a + entropy() + unseeded() + temp() + seeded() + braced();
}

unsigned clean_reference_param(std::mt19937& rng) { return rng(); }

}  // namespace fixture
