// Fixture: uninit-member rule. Passed to run_lint with this file on the
// uninit-member file list and `SeqNum` as a scalar alias.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

using SeqNum = std::uint64_t;

struct WireMessage {
  std::uint64_t id;            // line 14: scalar, no initializer
  SeqNum seq;                  // line 15: scalar alias, no initializer
  double weight;               // line 16: scalar, no initializer
  std::uint64_t ok_zero = 0;   // clean: initialized
  bool ok_braced{};            // clean: brace-initialized
  std::string name;            // clean: class type default-constructs
  std::vector<int> payload;    // clean: class type

  std::uint64_t total() const { return id + seq + ok_zero; }
};

struct Nested {
  struct Inner {
    std::uint32_t tag;  // line 27: nested wire struct, still checked
  };
  Inner inner;  // clean: class type
};

}  // namespace fixture
