// Fixture: wall-clock allowlist. This file is passed to run_lint with an
// allowlist entry naming it, so the clock reads below must NOT be
// reported (measured-timing scenarios are the sanctioned use).
#include <chrono>

namespace fixture {

double measured_timing() {
  const auto start = std::chrono::steady_clock::now();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace fixture
