// Fixture: header declaring unordered members — unordered_iter.cpp
// includes this, so iteration there must resolve these names through the
// include closure (the replica.h/replica.cpp split in the real tree).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

using SeenSet = std::unordered_map<std::uint64_t, bool>;

struct Holder {
  std::unordered_map<std::uint64_t, int> pending_;
  SeenSet seen_;               // alias of an unordered type
  std::vector<int> ordered_;   // NOT unordered: iteration is fine

  int drain();
};

}  // namespace fixture
