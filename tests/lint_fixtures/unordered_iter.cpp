// Fixture: unordered-iteration rule. Deliberate violations.
#include "unordered_iter.h"

#include <numeric>

namespace fixture {

int Holder::drain() {
  int total = 0;
  for (const auto& [id, value] : pending_) {  // line 10: range-for
    total += value;
  }
  for (auto it = seen_.begin(); it != seen_.end(); ++it) {  // line 13
    total += it->second ? 1 : 0;
  }
  for (const int v : ordered_) total += v;  // vector: clean
  // findep-lint: allow(unordered-iteration) -- fixture: order-insensitive integer fold
  for (const auto& [id, value] : pending_) total += value;
  // lookups and membership tests are clean: no iteration involved
  total += static_cast<int>(pending_.count(0));
  return total;
}

}  // namespace fixture
