// Fixture: pointer-keyed-container rule. Deliberate violations.
#include <map>
#include <set>
#include <string>
#include <unordered_set>

namespace fixture {

struct Node {
  int value = 0;
};

std::map<Node*, int> by_node;          // line 13: pointer key
std::set<const Node*> visited;         // line 14: pointer key
std::unordered_set<int*> raw_ints;     // line 15: pointer key
std::map<std::string, Node*> by_name;  // clean: pointer VALUE is fine
std::set<int> plain;                   // clean

}  // namespace fixture
