// Vulnerabilities, fault injection, adversaries, exposure windows.
#include <gtest/gtest.h>

#include "config/sampler.h"
#include "faults/adversary.h"
#include "faults/injector.h"
#include "faults/windows.h"
#include "support/assert.h"

namespace findep::faults {
namespace {

std::vector<diversity::ReplicaRecord> distinct_population(std::size_t n) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(catalog, config::SamplerOptions{});
  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg : sampler.distinct_configurations(n)) {
    population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  return population;
}

TEST(Vulnerability, WindowSemantics) {
  Vulnerability v;
  v.component = config::ComponentId{0};
  v.discovered_at = 10.0;
  v.patched_at = 20.0;
  EXPECT_FALSE(v.window_open(9.99));
  EXPECT_TRUE(v.window_open(10.0));
  EXPECT_TRUE(v.window_open(19.99));
  EXPECT_FALSE(v.window_open(20.0));
}

TEST(Catalog, AddValidatesAndIndexes) {
  VulnerabilityCatalog catalog;
  Vulnerability v;
  v.component = config::ComponentId{3};
  v.discovered_at = 1.0;
  v.patched_at = 5.0;
  const VulnId id = catalog.add(v);
  EXPECT_EQ(catalog.get(id).component.value, 3u);
  EXPECT_EQ(catalog.in_component(config::ComponentId{3}).size(), 1u);
  EXPECT_TRUE(catalog.in_component(config::ComponentId{4}).empty());
  EXPECT_EQ(catalog.open_at(2.0).size(), 1u);
  EXPECT_TRUE(catalog.open_at(6.0).empty());

  Vulnerability bad = v;
  bad.patched_at = 0.5;  // before discovery
  EXPECT_THROW(catalog.add(bad), support::ContractViolation);
}

TEST(Catalog, SynthesisRespectsRates) {
  const config::ComponentCatalog components = config::standard_catalog();
  SynthesisOptions opt;
  opt.mean_vulns_per_component = 2.0;
  opt.horizon_days = 100.0;
  const VulnerabilityCatalog catalog = synthesize_catalog(components, opt);
  // Poisson(2) per component: expect roughly 2 * |components| total.
  const double expected =
      2.0 * static_cast<double>(components.size());
  EXPECT_NEAR(static_cast<double>(catalog.size()), expected,
              expected * 0.5);
  for (const Vulnerability& v : catalog.all()) {
    EXPECT_GE(v.discovered_at, 0.0);
    EXPECT_LE(v.discovered_at, opt.horizon_days);
    EXPECT_GT(v.patched_at, v.discovered_at);
    EXPECT_FALSE(v.label.empty());
  }
}

TEST(Catalog, SynthesisDeterministicPerSeed) {
  const config::ComponentCatalog components = config::standard_catalog();
  SynthesisOptions opt;
  const auto a = synthesize_catalog(components, opt);
  const auto b = synthesize_catalog(components, opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.all()[i].discovered_at, b.all()[i].discovered_at);
  }
}

TEST(Injector, SingleComponentFaultHitsSharers) {
  // 3 replicas, two sharing an OS.
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(catalog, config::SamplerOptions{});
  auto configs = sampler.distinct_configurations(3);
  const auto shared_os =
      *configs[0].component(config::ComponentKind::kOperatingSystem);
  configs[1].set(catalog, shared_os);

  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg : configs) {
    population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  FaultInjector injector(population);
  const CompromiseResult r =
      injector.inject_components(std::vector{shared_os});
  EXPECT_EQ(r.compromised.size(), 2u);
  EXPECT_NEAR(r.compromised_fraction, 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(r.breaks(diversity::kBftThreshold));
}

TEST(Injector, UnknownComponentCompromisesNobody) {
  FaultInjector injector(distinct_population(4));
  const CompromiseResult r = injector.inject_components(
      std::vector{config::ComponentId{9999}});
  EXPECT_TRUE(r.compromised.empty());
  EXPECT_DOUBLE_EQ(r.compromised_fraction, 0.0);
}

TEST(Injector, WorstCaseGreedyIsMonotone) {
  support::Rng rng(5);
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{.zipf_exponent = 1.0,
                                      .attestable_fraction = 0.5});
  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg : sampler.sample_population(rng, 40)) {
    population.push_back(
        diversity::ReplicaRecord{cfg, rng.uniform(0.5, 2.0), true});
  }
  FaultInjector injector(population);
  double prev = 0.0;
  for (std::size_t k = 0; k <= 6; ++k) {
    const CompromiseResult r = injector.worst_case_components(k);
    EXPECT_GE(r.compromised_fraction, prev - 1e-12) << k;
    EXPECT_LE(r.faults_used, k);
    prev = r.compromised_fraction;
  }
}

TEST(Injector, WorstCaseBeatsAverageRandom) {
  support::Rng rng(6);
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(catalog, config::SamplerOptions{});
  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg : sampler.sample_population(rng, 30)) {
    population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  FaultInjector injector(population);
  const double greedy =
      injector.worst_case_components(2).compromised_fraction;
  // Average random 2-component compromise.
  double sum = 0.0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    const auto picks =
        rng.sample_indices(injector.present_components().size(), 2);
    const std::vector<config::ComponentId> components = {
        injector.present_components()[picks[0]],
        injector.present_components()[picks[1]]};
    sum += injector.inject_components(components).compromised_fraction;
  }
  EXPECT_GE(greedy, sum / kTrials);
}

TEST(Injector, ExploitabilityScalesCompromise) {
  // 8 replicas so every replica has a distinct OS (variety 8): exactly one
  // 50% exploit roll per replica.
  auto population = distinct_population(8);
  VulnerabilityCatalog catalog;
  // One vulnerability per replica's OS with 50% exploitability.
  std::vector<VulnId> vulns;
  for (const auto& rec : population) {
    Vulnerability v;
    v.component =
        *rec.configuration.component(config::ComponentKind::kOperatingSystem);
    v.exploitability = 0.5;
    v.discovered_at = 0.0;
    v.patched_at = 100.0;
    vulns.push_back(catalog.add(v));
  }
  FaultInjector injector(population);
  support::Rng rng(7);
  double total = 0.0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    total += injector.inject_vulnerabilities(catalog, vulns, 1.0, rng)
                 .compromised_fraction;
  }
  EXPECT_NEAR(total / kTrials, 0.5, 0.05);
}

TEST(Injector, ClosedWindowHasNoEffect) {
  auto population = distinct_population(4);
  VulnerabilityCatalog catalog;
  Vulnerability v;
  v.component = *population[0].configuration.component(
      config::ComponentKind::kOperatingSystem);
  v.discovered_at = 10.0;
  v.patched_at = 20.0;
  const VulnId id = catalog.add(v);
  FaultInjector injector(population);
  support::Rng rng(8);
  EXPECT_DOUBLE_EQ(injector
                       .inject_vulnerabilities(catalog, std::vector{id},
                                               30.0, rng)
                       .compromised_fraction,
                   0.0);
  EXPECT_GT(injector
                .inject_vulnerabilities(catalog, std::vector{id}, 15.0, rng)
                .compromised_fraction,
            0.0);
}

TEST(Injector, BreakProbabilityMonotoneInBudget) {
  support::Rng rng(9);
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{.zipf_exponent = 1.2,
                                      .attestable_fraction = 0.5});
  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg : sampler.sample_population(rng, 30)) {
    population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  FaultInjector injector(population);
  double prev = 0.0;
  for (std::size_t k : {1u, 3u, 6u, 12u}) {
    support::Rng trial_rng(100 + k);
    const double p = injector.break_probability(
        k, diversity::kBftThreshold, 300, trial_rng);
    EXPECT_GE(p, prev - 0.05) << k;  // small MC slack
    prev = p;
  }
}

TEST(Adversary, OperatorTakesRichestFirst) {
  OperatedPopulation pop;
  pop.replicas = distinct_population(4);
  pop.replicas[2].power = 10.0;
  pop.operator_of = {0, 1, 2, 3};
  const CompromiseResult r = OperatorAdversary{1}.attack(pop);
  EXPECT_EQ(r.compromised.size(), 1u);
  EXPECT_EQ(r.compromised[0], 2u);
  EXPECT_NEAR(r.compromised_fraction, 10.0 / 13.0, 1e-12);
}

TEST(Adversary, OperatorControlsAllItsReplicas) {
  OperatedPopulation pop;
  pop.replicas = distinct_population(6);
  pop.operator_of = {0, 0, 0, 1, 1, 2};  // operator 0 runs 3 replicas
  const CompromiseResult r = OperatorAdversary{1}.attack(pop);
  EXPECT_EQ(r.compromised.size(), 3u);
  EXPECT_NEAR(r.compromised_fraction, 0.5, 1e-12);
}

TEST(Adversary, ZeroBudgetCompromisesNothing) {
  OperatedPopulation pop;
  pop.replicas = distinct_population(4);
  pop.operator_of = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(OperatorAdversary{0}.attack(pop).compromised_fraction,
                   0.0);
}

TEST(Adversary, HybridAtLeastAsStrongAsParts) {
  support::Rng rng(10);
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{.zipf_exponent = 1.0,
                                      .attestable_fraction = 0.5});
  OperatedPopulation pop;
  for (const auto& cfg : sampler.sample_population(rng, 24)) {
    pop.replicas.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
    pop.operator_of.push_back(
        static_cast<OperatorId>(rng.below(6)));
  }
  FaultInjector injector(pop.replicas);
  for (std::size_t budget : {1u, 2u, 3u}) {
    const double hybrid =
        HybridAdversary{budget}.attack(injector, pop).compromised_fraction;
    const double vuln_only =
        injector.worst_case_components(budget).compromised_fraction;
    const double op_only =
        OperatorAdversary{budget}.attack(pop).compromised_fraction;
    EXPECT_GE(hybrid, vuln_only - 1e-12) << budget;
    EXPECT_GE(hybrid, op_only - 1e-12) << budget;
  }
}

TEST(Windows, ExposureTimelineTracksWindows) {
  auto population = distinct_population(4);
  VulnerabilityCatalog catalog;
  Vulnerability v;
  v.component = *population[0].configuration.component(
      config::ComponentKind::kOperatingSystem);
  v.discovered_at = 10.0;
  v.patched_at = 20.0;
  catalog.add(v);

  PatchLagModel patching;
  patching.mean_deploy_lag_days = 1.0;
  const ExposureTimeline timeline =
      compute_exposure(population, catalog, 60.0, 121, patching);
  ASSERT_EQ(timeline.points.size(), 121u);
  // Before discovery: nothing exposed.
  EXPECT_DOUBLE_EQ(timeline.points[10].exposed_fraction, 0.0);  // t = 5
  // Mid-window: the one exposed replica (1/4 power).
  EXPECT_NEAR(timeline.peak_exposed_fraction, 0.25, 1e-12);
  EXPECT_GE(timeline.peak_time, 10.0);
  EXPECT_EQ(timeline.peak_open_vulnerabilities, 1u);
  // Long after patch + lag: closed again.
  EXPECT_DOUBLE_EQ(timeline.points.back().exposed_fraction, 0.0);
}

TEST(Windows, MonoculturePeaksAtFullExposure) {
  const config::ComponentCatalog catalog = config::monoculture_catalog();
  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{.attestable_fraction = 1.0});
  support::Rng rng(11);
  std::vector<diversity::ReplicaRecord> population;
  for (const auto& cfg : sampler.sample_population(rng, 8)) {
    population.push_back(diversity::ReplicaRecord{cfg, 1.0, true});
  }
  VulnerabilityCatalog vulns;
  Vulnerability v;
  v.component = *population[0].configuration.component(
      config::ComponentKind::kOperatingSystem);
  v.discovered_at = 5.0;
  v.patched_at = 15.0;
  vulns.add(v);
  const ExposureTimeline timeline =
      compute_exposure(population, vulns, 30.0, 61, PatchLagModel{});
  EXPECT_DOUBLE_EQ(timeline.peak_exposed_fraction, 1.0);
  EXPECT_GT(timeline.time_above_majority_threshold, 0.2);
}

}  // namespace
}  // namespace findep::faults
