// Merkle tree construction and proof verification, including the odd-node
// promotion rule and leaf/interior domain separation.
#include <gtest/gtest.h>

#include "crypto/merkle.h"
#include "support/assert.h"

namespace findep::crypto {
namespace {

std::vector<Digest> make_leaves(std::size_t n) {
  std::vector<Digest> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(Sha256{}.update("leaf").update_u64(i).finish());
  }
  return leaves;
}

TEST(Merkle, SingleLeafRootIsLeafHash) {
  const auto leaves = make_leaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), MerkleTree::hash_leaf(leaves[0]));
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_TRUE(MerkleTree::verify(leaves[0], tree.prove(0), tree.root()));
}

TEST(Merkle, EmptyRejected) {
  EXPECT_THROW(MerkleTree({}), support::ContractViolation);
}

TEST(Merkle, TwoLeaves) {
  const auto leaves = make_leaves(2);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(),
            MerkleTree::hash_interior(MerkleTree::hash_leaf(leaves[0]),
                                      MerkleTree::hash_leaf(leaves[1])));
}

class MerkleSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleSizes, AllProofsVerify) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(MerkleTree::verify(leaves[i], tree.prove(i), tree.root()))
        << "leaf " << i << " of " << n;
  }
}

TEST_P(MerkleSizes, WrongLeafFailsEveryPosition) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  MerkleTree tree(leaves);
  const Digest impostor = sha256("impostor");
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FALSE(MerkleTree::verify(impostor, tree.prove(i), tree.root()));
  }
}

TEST_P(MerkleSizes, ProofForWrongPositionFails) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  const auto leaves = make_leaves(n);
  MerkleTree tree(leaves);
  // leaf 0's data with leaf 1's proof must not verify.
  EXPECT_FALSE(MerkleTree::verify(leaves[0], tree.prove(1), tree.root()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16,
                                           17, 31, 33, 64, 100, 255));

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  const Digest original = MerkleTree(leaves).root();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i] = sha256("mutated");
    EXPECT_NE(MerkleTree(mutated).root(), original) << "leaf " << i;
  }
}

TEST(Merkle, RootDependsOnOrder) {
  auto leaves = make_leaves(4);
  const Digest original = MerkleTree(leaves).root();
  std::swap(leaves[0], leaves[1]);
  EXPECT_NE(MerkleTree(leaves).root(), original);
}

TEST(Merkle, DomainSeparationLeafVsInterior) {
  // An interior hash value used as a leaf must hash differently.
  const auto leaves = make_leaves(2);
  const Digest left = MerkleTree::hash_leaf(leaves[0]);
  const Digest right = MerkleTree::hash_leaf(leaves[1]);
  const Digest interior = MerkleTree::hash_interior(left, right);
  EXPECT_NE(MerkleTree::hash_leaf(interior), interior);
}

TEST(Merkle, ProveOutOfRangeRejected) {
  MerkleTree tree(make_leaves(3));
  EXPECT_THROW((void)tree.prove(3), support::ContractViolation);
}

TEST(Merkle, ProofLengthIsLogarithmic) {
  MerkleTree tree(make_leaves(256));
  EXPECT_EQ(tree.prove(0).size(), 8u);
}

TEST(Merkle, OddPromotionProofShorterOnRightEdge) {
  // With 5 leaves the last leaf is promoted through several levels and
  // needs fewer siblings.
  const auto leaves = make_leaves(5);
  MerkleTree tree(leaves);
  EXPECT_LT(tree.prove(4).size(), tree.prove(0).size());
  EXPECT_TRUE(MerkleTree::verify(leaves[4], tree.prove(4), tree.root()));
}

}  // namespace
}  // namespace findep::crypto
