// The task wire format: JSON round-trips for params, metrics and run
// records (including inf/nan/denormal values and error-carrying records),
// the emit → worker → merge pipeline's byte-identity with the in-process
// sweep across real families, deterministic worker output, CSV escaping,
// and the new CLI flags.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/metrics.h"
#include "runtime/param.h"
#include "runtime/registry.h"
#include "runtime/suite.h"
#include "runtime/sweep.h"
#include "runtime/task.h"
#include "support/rng.h"

namespace findep::runtime {
namespace {

// --- ParamValue / ParamSet round-trips --------------------------------------

TEST(ParamValueJson, RoundTripsEveryAlternative) {
  for (const ParamValue& value :
       {ParamValue(true), ParamValue(false), ParamValue(std::int64_t{-42}),
        ParamValue(std::int64_t{1} << 62), ParamValue(0.1),
        ParamValue(1.0 / 3.0), ParamValue(-0.0), ParamValue("plain"),
        ParamValue("with \"quotes\", commas\nand\tcontrol\x01 bytes")}) {
    const ParamValue back = param_value_from_json(to_json(value));
    EXPECT_TRUE(back == value) << to_json(value);
    // Serialization is a fixed point: round-tripping cannot drift.
    EXPECT_EQ(to_json(back), to_json(value));
  }
}

TEST(ParamValueJson, PreservesTypeOfIntegralDoubles) {
  // "7" the int and "7" the double are different wire values; the type
  // tag keeps them apart even though both render as "7".
  const ParamValue as_int{std::int64_t{7}};
  const ParamValue as_double{7.0};
  EXPECT_TRUE(param_value_from_json(to_json(as_int)).is_int());
  EXPECT_TRUE(param_value_from_json(to_json(as_double)).is_double());
}

TEST(ParamValueJson, RoundTripsNonFiniteAndDenormalDoubles) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kDenormMin = std::numeric_limits<double>::denorm_min();
  for (const double v : {kInf, -kInf, kDenormMin, -kDenormMin, 1e-310}) {
    const ParamValue back = param_value_from_json(to_json(ParamValue(v)));
    EXPECT_EQ(back.as_double(), v) << v;
  }
  const ParamValue nan_back = param_value_from_json(
      to_json(ParamValue(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(nan_back.as_double()));
}

TEST(ParamValueJson, RejectsMalformedInput) {
  EXPECT_THROW((void)param_value_from_json("{}"), std::invalid_argument);
  EXPECT_THROW((void)param_value_from_json(
                   R"({"type": "int", "value": "abc"})"),
               std::invalid_argument);
  EXPECT_THROW((void)param_value_from_json(
                   R"({"type": "quaternion", "value": "1"})"),
               std::invalid_argument);
  EXPECT_THROW((void)param_value_from_json("not json"),
               std::invalid_argument);
  EXPECT_THROW((void)param_value_from_json(
                   R"({"type": "int", "value": "1"} trailing)"),
               std::invalid_argument);
}

TEST(ParamValueJson, RejectsDeeplyNestedInput) {
  // The reader bounds recursion depth (found by tests/fuzz_task_json):
  // a pathological run of '[' must raise invalid_argument, not overflow
  // the stack. Depth 63 still parses as a (shape-invalid) value; 4096
  // blows past the bound.
  const std::string deep(4096, '[');
  EXPECT_THROW((void)param_set_from_json(deep), std::invalid_argument);
  const std::string near = std::string(63, '[') + std::string(63, ']');
  EXPECT_THROW((void)param_value_from_json(near), std::invalid_argument);
}

TEST(ParamSetJson, RoundTripsMixedTypesInOrder) {
  ParamSet params;
  params.set("n", ParamValue(std::int64_t{7}));
  params.set("skew", ParamValue(0.5));
  params.set("mix", ParamValue("byzantine, \"lazy\""));
  params.set("fast", ParamValue(true));
  const ParamSet back = param_set_from_json(to_json(params));
  ASSERT_EQ(back.entries().size(), 4u);
  // Order is part of the identity (it names scenarios): must survive.
  EXPECT_EQ(back.label(), params.label());
  EXPECT_EQ(back.get_int("n"), 7);
  EXPECT_DOUBLE_EQ(back.get_double("skew"), 0.5);
  EXPECT_EQ(back.get_string("mix"), "byzantine, \"lazy\"");
  EXPECT_TRUE(back.get_bool("fast"));
  EXPECT_EQ(to_json(back), to_json(params));
}

TEST(ParamSetJson, PropertyRandomSetsAreSerializationFixedPoints) {
  support::Rng rng(2026);
  for (int iteration = 0; iteration < 200; ++iteration) {
    ParamSet params;
    const std::size_t n = rng.below(6);
    for (std::size_t p = 0; p < n; ++p) {
      const std::string name = "p" + std::to_string(p);
      switch (rng.below(4)) {
        case 0: params.set(name, ParamValue(rng.below(2) == 0)); break;
        case 1:
          params.set(name,
                     ParamValue(static_cast<std::int64_t>(rng())));
          break;
        case 2: {
          // Random bit patterns: hits denormals, huge/tiny magnitudes and
          // occasionally inf/nan.
          const std::uint64_t bits = rng();
          double v;
          std::memcpy(&v, &bits, sizeof v);
          params.set(name, ParamValue(v));
          break;
        }
        default:
          params.set(name, ParamValue("s" + std::to_string(rng() % 97)));
      }
    }
    const std::string wire = to_json(params);
    const ParamSet back = param_set_from_json(wire);
    EXPECT_EQ(to_json(back), wire) << "iteration " << iteration;
    EXPECT_EQ(back.entries().size(), params.entries().size());
  }
}

// --- MetricRecord / RunRecord round-trips -----------------------------------

TEST(MetricRecordJson, RoundTripsNonFiniteAndDenormalValues) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  MetricRecord metrics;
  metrics.set("plain", 1.5);
  metrics.set("third", 1.0 / 3.0);
  metrics.set("pos_inf", kInf);
  metrics.set("neg_inf", -kInf);
  metrics.set("nan", std::numeric_limits<double>::quiet_NaN());
  metrics.set("denorm_min", std::numeric_limits<double>::denorm_min());
  metrics.set("denormal", 1e-310);
  metrics.set("neg_zero", -0.0);
  metrics.set("huge", 1.7976931348623157e308);

  const MetricRecord back = metric_record_from_json(to_json(metrics));
  ASSERT_EQ(back.entries().size(), metrics.entries().size());
  for (std::size_t i = 0; i < metrics.entries().size(); ++i) {
    const auto& [name, value] = metrics.entries()[i];
    EXPECT_EQ(back.entries()[i].first, name);
    const double got = back.entries()[i].second;
    // Bit-faithful, not just "close": compare the representation.
    std::uint64_t want_bits = 0, got_bits = 0;
    std::memcpy(&want_bits, &value, sizeof value);
    std::memcpy(&got_bits, &got, sizeof got);
    EXPECT_EQ(got_bits, want_bits) << name;
  }
  EXPECT_EQ(to_json(back), to_json(metrics));
}

TEST(RunRecordJson, RoundTripsOkAndErrorRecords) {
  RunRecord ok;
  ok.seed = 0xffffffffffffffffULL;  // full uint64 range must survive
  ok.run_index = 12;
  ok.metrics.set("m", 2.25);
  const RunRecord ok_back = run_record_from_json(to_json(ok));
  EXPECT_EQ(ok_back.seed, ok.seed);
  EXPECT_EQ(ok_back.run_index, ok.run_index);
  EXPECT_TRUE(ok_back.ok());
  EXPECT_TRUE(ok_back.metrics == ok.metrics);

  RunRecord failed;
  failed.seed = 7;
  failed.run_index = 3;
  failed.error = "contract violated: \"n >= 4\",\nline 2";
  const RunRecord failed_back = run_record_from_json(to_json(failed));
  EXPECT_FALSE(failed_back.ok());
  EXPECT_EQ(failed_back.error, failed.error);
  EXPECT_EQ(failed_back.seed, 7u);
  EXPECT_TRUE(failed_back.metrics.empty());
  EXPECT_EQ(to_json(failed_back), to_json(failed));
}

TEST(RunRecordJson, PropertyRandomRecordsAreSerializationFixedPoints) {
  support::Rng rng(77);
  for (int iteration = 0; iteration < 200; ++iteration) {
    RunRecord record;
    record.seed = rng();
    record.run_index = rng.below(1000);
    if (rng.below(5) == 0) {
      record.error = "error #" + std::to_string(rng() % 1000);
    } else {
      const std::size_t n = 1 + rng.below(5);
      for (std::size_t m = 0; m < n; ++m) {
        const std::uint64_t bits = rng();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        record.metrics.set("m" + std::to_string(m), v);
      }
    }
    const std::string wire = to_json(record);
    EXPECT_EQ(to_json(run_record_from_json(wire)), wire)
        << "iteration " << iteration;
  }
}

// --- TaskSpec / TaskResult --------------------------------------------------

TEST(TaskSpecJson, RoundTripsAndToleratesMissingSequence) {
  TaskSpec task;
  task.family = "bft_scaling";
  task.params.set("n", ParamValue(std::int64_t{7}));
  task.base_seed = 0x123456789abcdef0ULL;
  task.run_index = 5;
  task.sequence = 42;
  const TaskSpec back = task_spec_from_json(to_json(task));
  EXPECT_EQ(back.family, task.family);
  EXPECT_EQ(back.params.label(), task.params.label());
  EXPECT_EQ(back.base_seed, task.base_seed);
  EXPECT_EQ(back.run_index, task.run_index);
  EXPECT_EQ(back.sequence, 42u);

  // Hand-written tasks may omit the ordering key.
  const TaskSpec bare = task_spec_from_json(
      R"({"family": "micro", "params": [], "base_seed": 1, "run_index": 0})");
  EXPECT_EQ(bare.sequence, 0u);
  EXPECT_TRUE(bare.params.entries().empty());

  EXPECT_THROW((void)task_spec_from_json(R"({"params": []})"),
               std::invalid_argument);
}

TEST(TaskResultJson, RoundTripsBothShapes) {
  TaskResult result;
  result.family = "two_tier";
  result.scenario = "two_tier/alpha=2 attested_fraction=0.5";
  result.sequence = 9;
  result.record.seed = derive_seed(1, 0);
  result.record.run_index = 0;
  result.record.metrics.set("resilience", 0.75);
  const TaskResult back = task_result_from_json(to_json(result));
  EXPECT_EQ(back.scenario, result.scenario);
  EXPECT_EQ(back.sequence, 9u);
  EXPECT_TRUE(back.record.metrics == result.record.metrics);
  EXPECT_EQ(to_json(back), to_json(result));

  result.record.metrics = MetricRecord{};
  result.record.error = "boom";
  const TaskResult err_back = task_result_from_json(to_json(result));
  EXPECT_EQ(err_back.record.error, "boom");
  EXPECT_EQ(to_json(err_back), to_json(result));
}

// --- the pipeline: emit → worker → merge vs in-process ----------------------

/// The four real families the suite-level determinism test pins, with the
/// same grid shrinks so the test stays fast. Sorted by name: the order
/// run_families_main selects the whole catalog in.
FamilySelection shrunken_selection() {
  const ScenarioRegistry& registry = ScenarioRegistry::global();
  FamilySelection selection;
  for (const char* name :
       {"diversity_audit", "pool_compromise", "safety_condition",
        "two_tier"}) {
    const ScenarioFamily* family = registry.find(name);
    if (family == nullptr) ADD_FAILURE() << "missing family " << name;
    std::vector<ParamGrid> grids = family->grids;
    for (ParamGrid& grid : grids) {
      grid.override_axis("alpha", {"1", "4"});
      grid.override_axis("attested_fraction", {"0.5"});
      grid.override_axis("zipf", {"1"});
      grid.override_axis("trials", {"200"});
    }
    selection.emplace_back(family, std::move(grids));
  }
  return selection;
}

/// Renders the selection through the normal in-process suite path.
std::string run_in_process(const FamilySelection& selection,
                           const SuiteOptions& options) {
  ScenarioSuite suite("");
  for (const auto& [family, grids] : selection) {
    for (auto& scenario : instantiate_family(*family, grids)) {
      suite.add(std::move(scenario));
    }
  }
  std::ostringstream out, err;
  EXPECT_EQ(suite.run(options, out, err), 0) << err.str();
  return out.str();
}

/// Emits the selection as tasks, hand-shards them round-robin across
/// `shards` workers, executes each shard, and merges the result files.
std::string run_distributed(const FamilySelection& selection,
                            const SuiteOptions& options, std::size_t shards,
                            bool csv, bool json) {
  std::ostringstream tasks;
  emit_task_catalog(selection, options.sweep, options.only, "", tasks);

  // Round-robin sharding: deliberately NOT contiguous, so the merge's
  // sequence-based ordering (not shard order) is what restores catalog
  // order.
  std::vector<std::string> shard_tasks(shards);
  std::istringstream task_lines(tasks.str());
  std::string line;
  std::size_t index = 0;
  while (std::getline(task_lines, line)) {
    shard_tasks[index++ % shards] += line + '\n';
  }

  std::vector<std::string> paths;
  for (std::size_t s = 0; s < shards; ++s) {
    std::istringstream in(shard_tasks[s]);
    std::ostringstream out, err;
    EXPECT_EQ(run_worker(in, out, err, /*threads=*/0), 0) << err.str();
    const std::string path = ::testing::TempDir() + "findep_shard_" +
                             std::to_string(s) + ".jsonl";
    std::ofstream file(path);
    file << out.str();
    paths.push_back(path);
  }

  std::ostringstream merged, err;
  EXPECT_EQ(merge_shards(paths, csv, json, merged, err), 0) << err.str();
  return merged.str();
}

TEST(DistributedSweep, MergedShardsByteIdenticalToInProcessJson) {
  const FamilySelection selection = shrunken_selection();
  SuiteOptions options;
  options.sweep = {.base_seed = 11, .num_seeds = 2, .threads = 0};
  options.json = true;
  const std::string in_process = run_in_process(selection, options);
  const std::string distributed =
      run_distributed(selection, options, /*shards=*/3, false, true);
  EXPECT_EQ(distributed, in_process);
  // Meaningful comparison only if the sweep actually covered the catalog.
  EXPECT_NE(in_process.find("two_tier"), std::string::npos);
  EXPECT_NE(in_process.find("safety_condition"), std::string::npos);
}

TEST(DistributedSweep, MergedShardsByteIdenticalToInProcessCsv) {
  const FamilySelection selection = shrunken_selection();
  SuiteOptions options;
  options.sweep = {.base_seed = 11, .num_seeds = 2, .threads = 0};
  options.csv = true;
  const std::string in_process = run_in_process(selection, options);
  const std::string distributed =
      run_distributed(selection, options, /*shards=*/4, true, false);
  EXPECT_EQ(distributed, in_process);
}

TEST(DistributedSweep, EmitTasksShapeAndSeedDerivation) {
  const FamilySelection selection = shrunken_selection();
  SweepOptions sweep{.base_seed = 3, .num_seeds = 2, .threads = 0};
  std::ostringstream out;
  const std::size_t emitted = emit_task_catalog(selection, sweep, "", "", out);

  std::size_t instances = 0;
  for (const auto& [family, grids] : selection) {
    for (const ParamGrid& grid : grids) instances += grid.size();
  }
  EXPECT_EQ(emitted, instances * sweep.num_seeds);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  std::size_t last_sequence = 0;
  while (std::getline(lines, line)) {
    const TaskSpec task = task_spec_from_json(line);
    EXPECT_EQ(task.base_seed, 3u);
    EXPECT_LT(task.run_index, sweep.num_seeds);
    // Scenario-major: sequence is non-decreasing along the stream.
    EXPECT_GE(task.sequence, last_sequence);
    last_sequence = task.sequence;
    ++count;
  }
  EXPECT_EQ(count, emitted);
}

TEST(DistributedSweep, MergeKeepsSameNamedInstancesApart) {
  // A --set can collapse both bft_scaling grids onto the same point,
  // yielding two catalog instances with identical display names. The
  // in-process sweep renders both entries; the merge must too (sequence
  // is part of the merge group key precisely for this).
  const ScenarioFamily* family =
      ScenarioRegistry::global().find("bft_scaling");
  ASSERT_NE(family, nullptr);
  std::vector<ParamGrid> grids = family->grids;
  for (ParamGrid& grid : grids) {
    grid.override_axis("n", {"7"});
    grid.override_axis("mix", {"silent_backup"});
  }
  const FamilySelection selection = {{family, grids}};
  SuiteOptions options;
  options.sweep = {.base_seed = 2, .num_seeds = 1, .threads = 0};
  options.json = true;
  const std::string in_process = run_in_process(selection, options);
  const std::string distributed =
      run_distributed(selection, options, /*shards=*/2, false, true);
  EXPECT_EQ(distributed, in_process);
  // Both same-named instances must appear.
  const std::string needle = "\"name\": \"bft_scaling/n=7 silent_backup\"";
  const std::size_t first = in_process.find(needle);
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(in_process.find(needle, first + 1), std::string::npos);
}

TEST(DistributedSweep, WorkerOutputIndependentOfThreadCount) {
  const FamilySelection selection = shrunken_selection();
  std::ostringstream tasks;
  emit_task_catalog(selection, {.base_seed = 5, .num_seeds = 1}, "", "", tasks);

  std::string outputs[2];
  for (int i = 0; i < 2; ++i) {
    std::istringstream in(tasks.str());
    std::ostringstream out, err;
    EXPECT_EQ(run_worker(in, out, err, i == 0 ? 1 : 8), 0);
    outputs[i] = out.str();
  }
  // The ordered collector streams results in input order, so a worker's
  // stdout is deterministic on any thread count.
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_FALSE(outputs[0].empty());
}

TEST(DistributedSweep, WorkerTurnsFactoryRejectionIntoErrorRecord) {
  // "mix" is a string axis whose values the bft_scaling factory
  // validates: an unknown mix must come back as an error-carrying result
  // (exit 1), not kill the worker (exit 2).
  TaskSpec task;
  task.family = "bft_scaling";
  task.params.set("n", ParamValue(std::int64_t{7}));
  task.params.set("mix", ParamValue("not_a_real_mix"));
  std::istringstream in(to_json(task) + "\n");
  std::ostringstream out, err;
  EXPECT_EQ(run_worker(in, out, err, 1), 1);
  const TaskResult result = task_result_from_json(out.str());
  EXPECT_FALSE(result.record.ok());
  EXPECT_EQ(result.family, "bft_scaling");
}

TEST(DistributedSweep, WorkerRejectsMalformedAndUnknownTasks) {
  {
    std::istringstream in("this is not json\n");
    std::ostringstream out, err;
    EXPECT_EQ(run_worker(in, out, err, 1), 2);
    EXPECT_NE(err.str().find("line 1"), std::string::npos);
  }
  {
    std::istringstream in(
        R"({"family": "no_such_family", "params": [], "base_seed": 1, "run_index": 0})"
        "\n");
    std::ostringstream out, err;
    EXPECT_EQ(run_worker(in, out, err, 1), 2);
    EXPECT_NE(err.str().find("no_such_family"), std::string::npos);
  }
}

TEST(DistributedSweep, MergeRejectsOverlappingShards) {
  TaskResult result;
  result.family = "f";
  result.scenario = "f/x";
  result.record.seed = 9;
  result.record.run_index = 0;
  result.record.metrics.set("m", 1.0);
  const std::string path = ::testing::TempDir() + "findep_dup_shard.jsonl";
  std::ofstream file(path);
  file << to_json(result) << '\n' << to_json(result) << '\n';
  file.close();
  std::ostringstream out, err;
  EXPECT_EQ(merge_shards({path}, false, true, out, err), 2);
  EXPECT_NE(err.str().find("duplicate"), std::string::npos);
}

TEST(DistributedSweep, MergePropagatesErrorRecords) {
  TaskResult result;
  result.family = "f";
  result.scenario = "f/x";
  result.record.seed = 9;
  result.record.run_index = 0;
  result.record.error = "run failed";
  const std::string path = ::testing::TempDir() + "findep_err_shard.jsonl";
  std::ofstream file(path);
  file << to_json(result) << '\n';
  file.close();
  std::ostringstream out, err;
  EXPECT_EQ(merge_shards({path}, false, true, out, err), 1);
  EXPECT_NE(err.str().find("run failed"), std::string::npos);
}

// --- CSV escaping -----------------------------------------------------------

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(csv_escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, SinkQuotesScenarioAndMetricNames) {
  // Grid-built scenario names contain no commas today, but nothing
  // enforces that; the CSV must stay one row per record regardless.
  MetricsSink sink;
  RunRecord record;
  record.seed = 1;
  record.metrics.set("ns/op, hot", 2.0);
  sink.add("fam/a=1, b=\"x\"", "fam,ily", {record});
  std::ostringstream out;
  sink.print_csv(out);
  EXPECT_EQ(out.str(),
            "family,scenario,seeds,metric,mean,stddev,min,max\n"
            "\"fam,ily\",\"fam/a=1, b=\"\"x\"\"\",1,\"ns/op, hot\","
            "2,0,2,2\n");
}

// --- the new CLI flags ------------------------------------------------------

std::pair<bool, SuiteOptions> parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  SuiteOptions options;
  std::ostringstream err;
  const bool ok = parse_suite_options(static_cast<int>(args.size()),
                                      args.data(), options, err);
  return {ok, options};
}

TEST(WireFlags, MergeConsumesPathsUntilNextFlag) {
  const auto [ok, options] =
      parse({"--merge", "a.jsonl", "-", "b.jsonl", "--json"});
  ASSERT_TRUE(ok);
  EXPECT_TRUE(options.merge_mode);
  ASSERT_EQ(options.merge.size(), 3u);
  EXPECT_EQ(options.merge[1], "-");
  EXPECT_TRUE(options.json);

  EXPECT_FALSE(parse({"--merge"}).first);
  EXPECT_FALSE(parse({"--merge", "--json"}).first);
}

TEST(WireFlags, ModesAreMutuallyExclusiveAndOutParses) {
  EXPECT_TRUE(parse({"--emit-tasks"}).second.emit_tasks);
  EXPECT_TRUE(parse({"--worker"}).second.worker);
  EXPECT_FALSE(parse({"--emit-tasks", "--worker"}).first);
  EXPECT_FALSE(parse({"--worker", "--merge", "x"}).first);

  const auto [ok, options] = parse({"--out", "results.json", "--json"});
  ASSERT_TRUE(ok);
  EXPECT_EQ(options.out_file, "results.json");
  EXPECT_FALSE(parse({"--out"}).first);
}

}  // namespace
}  // namespace findep::runtime
