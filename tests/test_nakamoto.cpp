// Nakamoto consensus: block tree, mining race, fork dynamics, attacks,
// mining-pool exposure.
#include <gtest/gtest.h>

#include <cmath>

#include "nakamoto/attack.h"
#include "nakamoto/miner.h"
#include "nakamoto/pools.h"
#include "support/assert.h"

namespace findep::nakamoto {
namespace {

Block child_of(const Block& parent, MinerId miner, std::uint64_t nonce,
               double t = 1.0) {
  Block b;
  b.parent = parent.hash;
  b.height = parent.height + 1;
  b.miner = miner;
  b.mined_at = t;
  b.hash = Block::compute_hash(parent.hash, miner, nonce);
  return b;
}

TEST(BlockTree, StartsAtGenesis) {
  BlockTree tree;
  EXPECT_EQ(tree.tip().hash, genesis().hash);
  EXPECT_EQ(tree.tip_height(), 0u);
  EXPECT_EQ(tree.block_count(), 0u);
  EXPECT_TRUE(tree.main_chain().empty());
}

TEST(BlockTree, ExtendsAndSelectsLongest) {
  BlockTree tree;
  const Block b1 = child_of(genesis(), 0, 1);
  const Block b2 = child_of(b1, 1, 2);
  EXPECT_TRUE(tree.add(b1));
  EXPECT_TRUE(tree.add(b2));
  EXPECT_EQ(tree.tip().hash, b2.hash);
  EXPECT_EQ(tree.tip_height(), 2u);
  EXPECT_EQ(tree.main_chain().size(), 2u);
  EXPECT_TRUE(tree.on_main_chain(b1.hash));
}

TEST(BlockTree, RejectsOrphanAndDuplicate) {
  BlockTree tree;
  const Block b1 = child_of(genesis(), 0, 1);
  const Block b2 = child_of(b1, 0, 2);
  EXPECT_FALSE(tree.add(b2));  // parent unknown
  EXPECT_TRUE(tree.add(b1));
  EXPECT_TRUE(tree.add(b2));
  EXPECT_FALSE(tree.add(b2));  // duplicate
}

TEST(BlockTree, FirstSeenTieBreak) {
  BlockTree tree;
  const Block a = child_of(genesis(), 0, 1);
  const Block b = child_of(genesis(), 1, 2);
  tree.add(a);
  tree.add(b);  // same height: tip stays with first seen
  EXPECT_EQ(tree.tip().hash, a.hash);
  EXPECT_EQ(tree.stale_count(), 1u);
  EXPECT_FALSE(tree.on_main_chain(b.hash));
}

TEST(BlockTree, ReorgToLongerBranch) {
  BlockTree tree;
  const Block a1 = child_of(genesis(), 0, 1);
  const Block b1 = child_of(genesis(), 1, 2);
  const Block b2 = child_of(b1, 1, 3);
  tree.add(a1);
  EXPECT_EQ(tree.reorg_depth(a1.hash), 0u);
  tree.add(b1);
  EXPECT_EQ(tree.reorg_depth(b1.hash), 1u);  // adopting b1 drops a1
  tree.add(b2);  // b-branch is longer: automatic reorg
  EXPECT_EQ(tree.tip().hash, b2.hash);
  EXPECT_FALSE(tree.on_main_chain(a1.hash));
  EXPECT_TRUE(tree.on_main_chain(b1.hash));
}

TEST(BlockTree, MinerSharesCountMainChainOnly) {
  BlockTree tree;
  const Block a1 = child_of(genesis(), 7, 1);
  const Block a2 = child_of(a1, 8, 2);
  const Block stale = child_of(genesis(), 9, 3);
  tree.add(a1);
  tree.add(a2);
  tree.add(stale);
  const auto shares = tree.miner_shares();
  EXPECT_EQ(shares.at(7), 1u);
  EXPECT_EQ(shares.at(8), 1u);
  EXPECT_FALSE(shares.contains(9));
}

TEST(Sim, ConvergesAcrossViews) {
  // Mining never quiesces, so views may differ at the very tip; they must
  // agree on the chain 6 blocks deep (the standard confirmation depth).
  NakamotoOptions opt;
  opt.mean_block_interval = 30.0;
  opt.network.min_latency = 0.05;
  opt.network.mean_extra_latency = 0.1;
  NakamotoSim sim(std::vector<double>(8, 1.0), opt);
  sim.run_for(3000.0);
  Height min_height = sim.view(0).tip_height();
  for (MinerId m = 1; m < 8; ++m) {
    min_height = std::min(min_height, sim.view(m).tip_height());
  }
  ASSERT_GT(min_height, 50u);
  const std::size_t confirmed = static_cast<std::size_t>(min_height) - 6;
  const auto reference = sim.view(0).main_chain();
  for (MinerId m = 1; m < 8; ++m) {
    const auto chain = sim.view(m).main_chain();
    EXPECT_EQ(chain[confirmed - 1], reference[confirmed - 1]) << m;
  }
}

TEST(Sim, BlockProductionRateMatchesInterval) {
  NakamotoOptions opt;
  opt.mean_block_interval = 20.0;
  NakamotoSim sim(std::vector<double>(4, 1.0), opt);
  sim.run_for(20000.0);
  // 20000 s / 20 s ≈ 1000 blocks (±20%).
  EXPECT_NEAR(static_cast<double>(sim.blocks_mined()), 1000.0, 200.0);
}

TEST(Sim, MainChainShareTracksHashrate) {
  NakamotoOptions opt;
  opt.mean_block_interval = 10.0;
  opt.seed = 5;
  // One miner with 60% of the power.
  NakamotoSim sim({6.0, 2.0, 1.0, 1.0}, opt);
  sim.run_for(20000.0);
  const ChainStats stats = sim.stats();
  EXPECT_NEAR(stats.miner_main_share[0], 0.6, 0.06);
  EXPECT_NEAR(stats.miner_main_share[1], 0.2, 0.05);
}

TEST(Sim, StaleRateGrowsWithPropagationDelay) {
  const auto stale_rate_for = [](double latency) {
    NakamotoOptions opt;
    opt.mean_block_interval = 12.0;
    opt.network.min_latency = latency;
    opt.network.mean_extra_latency = latency;
    opt.seed = 6;
    NakamotoSim sim(std::vector<double>(10, 1.0), opt);
    sim.run_for(12000.0);
    return sim.stats().stale_rate;
  };
  const double fast = stale_rate_for(0.01);
  const double slow = stale_rate_for(1.5);
  EXPECT_LT(fast, 0.05);
  EXPECT_GT(slow, fast);
}

TEST(Sim, ZeroHashrateMinerNeverMines) {
  NakamotoOptions opt;
  opt.mean_block_interval = 5.0;
  NakamotoSim sim({1.0, 0.0, 1.0}, opt);
  sim.run_for(2000.0);
  EXPECT_DOUBLE_EQ(sim.stats().miner_main_share[1], 0.0);
}

TEST(Attack, ClosedFormKnownValues) {
  // Nakamoto's paper, §11: q = 0.1 needs z = 5 for P < 0.1%; q = 0.3
  // needs z = 24. (Our formula uses the Poisson-corrected version.)
  EXPECT_LT(attack_success_closed_form(0.10, 5), 0.001);
  EXPECT_GE(attack_success_closed_form(0.10, 4), 0.001);
  EXPECT_LT(attack_success_closed_form(0.30, 24), 0.001);
  EXPECT_GE(attack_success_closed_form(0.30, 23), 0.001);
}

TEST(Attack, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(attack_success_closed_form(0.0, 6), 0.0);
  EXPECT_DOUBLE_EQ(attack_success_closed_form(0.5, 6), 1.0);
  EXPECT_DOUBLE_EQ(attack_success_closed_form(0.8, 6), 1.0);
  EXPECT_DOUBLE_EQ(attack_success_closed_form(0.2, 0), 1.0);
}

TEST(Attack, MonotoneInHashrateAndConfirmations) {
  double prev = 0.0;
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.4, 0.45}) {
    const double p = attack_success_closed_form(q, 6);
    EXPECT_GT(p, prev);
    prev = p;
  }
  prev = 1.1;
  for (unsigned z : {0u, 1u, 2u, 4u, 8u, 16u}) {
    const double p = attack_success_closed_form(0.25, z);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(Attack, MonteCarloMatchesClosedForm) {
  support::Rng rng(7);
  for (const auto& [q, z] : std::vector<std::pair<double, unsigned>>{
           {0.1, 2}, {0.2, 3}, {0.3, 4}}) {
    const double closed = attack_success_closed_form(q, z);
    const double mc = attack_success_monte_carlo(q, z, 20000, rng);
    EXPECT_NEAR(mc, closed, 0.02) << "q=" << q << " z=" << z;
  }
}

TEST(Attack, MajorityAlwaysWinsMonteCarlo) {
  support::Rng rng(8);
  EXPECT_DOUBLE_EQ(attack_success_monte_carlo(0.6, 6, 500, rng), 1.0);
}

TEST(Attack, ConfirmationsForRisk) {
  EXPECT_EQ(confirmations_for_risk(0.10, 0.001), 5u);
  EXPECT_EQ(confirmations_for_risk(0.30, 0.001), 24u);
  // Unachievable risk for q >= 0.5 saturates at max_z.
  EXPECT_EQ(confirmations_for_risk(0.55, 0.001, 50), 50u);
}

TEST(Pools, Example1LoadsPaperData) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  const PoolSet pools = PoolSet::example1(catalog, true);
  EXPECT_EQ(pools.size(), 17u);
  EXPECT_EQ(pools.get(0).name, "Foundry USA");
  EXPECT_NEAR(pools.total_share_percent(), 99.13, 0.05);
  EXPECT_EQ(pools.as_population().size(), 17u);
  EXPECT_EQ(pools.hashrates().size(), 17u);
}

TEST(Pools, DistinctConfigsExposeOnlyOnePoolPerComponent) {
  const config::ComponentCatalog catalog = config::standard_catalog();
  const PoolSet pools = PoolSet::example1(catalog, true);
  // Best case: any single *configuration* fault = one pool. The largest
  // single-component exposure is bounded by pools sharing a component
  // via the rotation (e.g. TEE variety 4 < 17 pools).
  const auto os0 = pools.get(0).configuration.component(
      config::ComponentKind::kOperatingSystem);
  ASSERT_TRUE(os0.has_value());
  const double exposed = pools.share_exposed_to(*os0);
  // Pools 0, 8, 16 share OS variant 0 (17 pools over 8 OSes).
  EXPECT_GT(exposed, pools.get(0).share_percent / 100.0);
  EXPECT_LT(exposed, 0.5);
}

TEST(Pools, MonoculturePoolsShareEverything) {
  const config::ComponentCatalog catalog = config::monoculture_catalog();
  const PoolSet pools = PoolSet::example1(catalog, false, 3);
  const auto os = pools.get(0).configuration.component(
      config::ComponentKind::kOperatingSystem);
  EXPECT_NEAR(pools.share_exposed_to(*os), 1.0, 1e-9);
}

TEST(Pools, CompromisedShareFeedsAttackMath) {
  // The paper's pipeline: component fault → pool hashrate → double-spend
  // success probability.
  const config::ComponentCatalog catalog = config::standard_catalog();
  const PoolSet pools = PoolSet::example1(catalog, true);
  const auto os0 = pools.get(0).configuration.component(
      config::ComponentKind::kOperatingSystem);
  const double q = pools.share_exposed_to(*os0);
  const double p6 = attack_success_closed_form(q, 6);
  EXPECT_GT(p6, attack_success_closed_form(
                    pools.get(0).share_percent / 100.0, 6));
}

}  // namespace
}  // namespace findep::nakamoto
