// libFuzzer harness for the runtime/task.{h,cpp} mini JSON reader — the
// distributed-sweep wire parser. A worker feeds it every line of stdin,
// and a merge feeds it every line of every shard file, so hostile or
// corrupted input must land in exactly one of two places: a parsed value
// or a std::invalid_argument. Anything else — a crash, a hang, unbounded
// recursion, an uncaught exception of another type — is a finding.
//
// Build (clang only):
//   CC=clang CXX=clang++ cmake -B build-fuzz -S . -DFINDEP_FUZZ=ON
//   cmake --build build-fuzz -j --target fuzz_task_json
// Seed + run (see README "Fuzzing the task wire format"):
//   ./build-fuzz/fuzz/fuzz_task_json -max_total_time=60 corpus/
//
// Beyond "don't crash", the harness checks the serializer/parser pair:
// any value that parses must re-serialize to a *fixed point* —
// to_json(parse(x)) itself parses, and re-serializing THAT yields the
// same bytes. The distributed merge relies on exactly this property for
// shard byte-identity.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "runtime/task.h"

namespace {

using findep::runtime::MetricRecord;
using findep::runtime::ParamSet;
using findep::runtime::ParamValue;
using findep::runtime::RunRecord;
using findep::runtime::TaskResult;
using findep::runtime::TaskSpec;

/// Fails loudly (libFuzzer treats abort as a crash) when a round-trip
/// property breaks.
void require(bool ok, const char* what) {
  if (!ok) {
    __builtin_trap();
    (void)what;
  }
}

template <typename Parse, typename Serialize>
void probe(const std::string& text, Parse parse, Serialize serialize) {
  try {
    auto value = parse(text);
    // Fixed point: the serialized form must parse, and re-serializing
    // the re-parse must reproduce the same bytes.
    const std::string once = serialize(value);
    auto reparsed = parse(once);
    require(serialize(reparsed) == once, "serializer not a fixed point");
  } catch (const std::invalid_argument&) {
    // The documented failure mode for malformed input.
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  probe(text,
        [](const std::string& t) {
          return findep::runtime::task_spec_from_json(t);
        },
        [](const TaskSpec& v) { return findep::runtime::to_json(v); });
  probe(text,
        [](const std::string& t) {
          return findep::runtime::task_result_from_json(t);
        },
        [](const TaskResult& v) { return findep::runtime::to_json(v); });
  probe(text,
        [](const std::string& t) {
          return findep::runtime::param_value_from_json(t);
        },
        [](const ParamValue& v) { return findep::runtime::to_json(v); });
  probe(text,
        [](const std::string& t) {
          return findep::runtime::param_set_from_json(t);
        },
        [](const ParamSet& v) { return findep::runtime::to_json(v); });
  probe(text,
        [](const std::string& t) {
          return findep::runtime::metric_record_from_json(t);
        },
        [](const MetricRecord& v) { return findep::runtime::to_json(v); });
  probe(text,
        [](const std::string& t) {
          return findep::runtime::run_record_from_json(t);
        },
        [](const RunRecord& v) { return findep::runtime::to_json(v); });
  return 0;
}
