// Replica-configuration model: catalog, configuration digests, samplers.
#include <gtest/gtest.h>

#include <set>

#include "config/catalog.h"
#include "config/replica_config.h"
#include "config/sampler.h"
#include "support/assert.h"

namespace findep::config {
namespace {

TEST(Catalog, StandardCatalogCoversEveryKind) {
  const ComponentCatalog catalog = standard_catalog();
  for (const ComponentKind kind : all_component_kinds()) {
    EXPECT_GT(catalog.variety(kind), 0u) << to_string(kind);
  }
  // §III-B: exactly the four TEE families the paper lists.
  EXPECT_EQ(catalog.variety(ComponentKind::kTrustedHardware), 4u);
  EXPECT_GE(catalog.variety(ComponentKind::kOperatingSystem), 8u);
}

TEST(Catalog, IdsAreDenseAndRetrievable) {
  const ComponentCatalog catalog = standard_catalog();
  for (std::uint32_t i = 0; i < catalog.size(); ++i) {
    const Component& c = catalog.get(ComponentId{i});
    EXPECT_EQ(c.id.value, i);
    EXPECT_FALSE(c.display().empty());
  }
  EXPECT_THROW((void)catalog.get(ComponentId{
                   static_cast<std::uint32_t>(catalog.size())}),
               support::ContractViolation);
}

TEST(Catalog, OfKindPartitionsComponents) {
  const ComponentCatalog catalog = standard_catalog();
  std::size_t total = 0;
  for (const ComponentKind kind : all_component_kinds()) {
    for (const ComponentId id : catalog.of_kind(kind)) {
      EXPECT_EQ(catalog.get(id).kind, kind);
      ++total;
    }
  }
  EXPECT_EQ(total, catalog.size());
}

TEST(Catalog, ConfigurationSpaceSizeIsProduct) {
  ComponentCatalog c;
  c.add(ComponentKind::kOperatingSystem, "a", "os1", "1");
  c.add(ComponentKind::kOperatingSystem, "a", "os2", "1");
  c.add(ComponentKind::kCryptoLibrary, "b", "lib", "1");
  c.add(ComponentKind::kTrustedHardware, "c", "tee", "1");
  // 2 OS * 1 crypto * (1 TEE + absent) = 4.
  EXPECT_DOUBLE_EQ(c.configuration_space_size(), 4.0);
}

TEST(ReplicaConfig, DigestIsStableAndOrderIndependent) {
  const ComponentCatalog catalog = standard_catalog();
  ReplicaConfiguration a, b;
  const auto os = catalog.of_kind(ComponentKind::kOperatingSystem)[0];
  const auto lib = catalog.of_kind(ComponentKind::kCryptoLibrary)[1];
  a.set(catalog, os);
  a.set(catalog, lib);
  b.set(catalog, lib);
  b.set(catalog, os);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a, b);
}

TEST(ReplicaConfig, DigestDistinguishesComponents) {
  const ComponentCatalog catalog = standard_catalog();
  const auto oses = catalog.of_kind(ComponentKind::kOperatingSystem);
  ReplicaConfiguration a, b;
  a.set(catalog, oses[0]);
  b.set(catalog, oses[1]);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(ReplicaConfig, ClearRemovesChoice) {
  const ComponentCatalog catalog = standard_catalog();
  ReplicaConfiguration cfg;
  const auto tee = catalog.of_kind(ComponentKind::kTrustedHardware)[0];
  cfg.set(catalog, tee);
  EXPECT_TRUE(cfg.is_attestable());
  const auto digest_with = cfg.digest();
  cfg.clear(ComponentKind::kTrustedHardware);
  EXPECT_FALSE(cfg.is_attestable());
  EXPECT_NE(cfg.digest(), digest_with);
}

TEST(ReplicaConfig, CompletenessIgnoresTrustedHardware) {
  const ComponentCatalog catalog = standard_catalog();
  ReplicaConfiguration cfg;
  for (const ComponentKind kind : all_component_kinds()) {
    if (kind == ComponentKind::kTrustedHardware) continue;
    cfg.set(catalog, catalog.of_kind(kind)[0]);
  }
  EXPECT_TRUE(cfg.is_complete());
  EXPECT_FALSE(cfg.is_attestable());
  cfg.clear(ComponentKind::kWallet);
  EXPECT_FALSE(cfg.is_complete());
}

TEST(ReplicaConfig, SharesComponentDetection) {
  const ComponentCatalog catalog = standard_catalog();
  const auto oses = catalog.of_kind(ComponentKind::kOperatingSystem);
  const auto libs = catalog.of_kind(ComponentKind::kCryptoLibrary);
  ReplicaConfiguration a, b;
  a.set(catalog, oses[0]);
  a.set(catalog, libs[0]);
  b.set(catalog, oses[0]);
  b.set(catalog, libs[1]);
  EXPECT_TRUE(a.shares_component_with(b));
  b.set(catalog, oses[1]);
  EXPECT_FALSE(a.shares_component_with(b));
}

TEST(Sampler, ProducesCompleteConfigurations) {
  const ComponentCatalog catalog = standard_catalog();
  ConfigurationSampler sampler(catalog, SamplerOptions{});
  support::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(sampler.sample(rng).is_complete());
  }
}

TEST(Sampler, AttestableFractionRespected) {
  const ComponentCatalog catalog = standard_catalog();
  SamplerOptions opts;
  opts.attestable_fraction = 0.25;
  ConfigurationSampler sampler(catalog, opts);
  support::Rng rng(2);
  int attestable = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    if (sampler.sample(rng).is_attestable()) ++attestable;
  }
  EXPECT_NEAR(attestable, kN / 4, kN / 20);
}

TEST(Sampler, ZeroAndOneAttestableFractions) {
  const ComponentCatalog catalog = standard_catalog();
  support::Rng rng(3);
  SamplerOptions none;
  none.attestable_fraction = 0.0;
  SamplerOptions all;
  all.attestable_fraction = 1.0;
  EXPECT_FALSE(
      ConfigurationSampler(catalog, none).sample(rng).is_attestable());
  EXPECT_TRUE(
      ConfigurationSampler(catalog, all).sample(rng).is_attestable());
}

TEST(Sampler, HighZipfShrinksDiversity) {
  const ComponentCatalog catalog = standard_catalog();
  support::Rng rng_a(4), rng_b(4);
  SamplerOptions uniform;
  uniform.zipf_exponent = 0.0;
  SamplerOptions skewed;
  skewed.zipf_exponent = 3.0;

  const auto distinct = [](const std::vector<ReplicaConfiguration>& pop) {
    std::set<crypto::Digest> ids;
    for (const auto& cfg : pop) ids.insert(cfg.digest());
    return ids.size();
  };
  const auto uniform_pop =
      ConfigurationSampler(catalog, uniform).sample_population(rng_a, 300);
  const auto skewed_pop =
      ConfigurationSampler(catalog, skewed).sample_population(rng_b, 300);
  EXPECT_GT(distinct(uniform_pop), distinct(skewed_pop));
}

TEST(Sampler, DistinctConfigurationsAreDistinct) {
  const ComponentCatalog catalog = standard_catalog();
  ConfigurationSampler sampler(catalog, SamplerOptions{});
  const auto configs = sampler.distinct_configurations(17);
  std::set<crypto::Digest> ids;
  for (const auto& cfg : configs) {
    EXPECT_TRUE(cfg.is_complete());
    ids.insert(cfg.digest());
  }
  EXPECT_EQ(ids.size(), configs.size());
}

TEST(Sampler, DistinctConfigurationsAdjacentShareNothing) {
  const ComponentCatalog catalog = standard_catalog();
  ConfigurationSampler sampler(catalog, SamplerOptions{});
  const auto configs = sampler.distinct_configurations(4);
  for (std::size_t i = 0; i + 1 < configs.size(); ++i) {
    EXPECT_FALSE(configs[i].shares_component_with(configs[i + 1])) << i;
  }
}

TEST(Sampler, MonocultureCatalogHasOneConfiguration) {
  const ComponentCatalog catalog = monoculture_catalog();
  ConfigurationSampler sampler(
      catalog, SamplerOptions{.zipf_exponent = 0.0,
                              .attestable_fraction = 1.0});
  support::Rng rng(5);
  const auto pop = sampler.sample_population(rng, 50);
  std::set<crypto::Digest> ids;
  for (const auto& cfg : pop) ids.insert(cfg.digest());
  EXPECT_EQ(ids.size(), 1u);
}

TEST(Sampler, RejectsIncompleteCatalog) {
  ComponentCatalog empty;
  EXPECT_THROW(ConfigurationSampler(empty, SamplerOptions{}),
               support::ContractViolation);
}

}  // namespace
}  // namespace findep::config
