// ConfigDistribution: accumulation, shares, abundance, scaling.
#include <gtest/gtest.h>

#include "diversity/distribution.h"
#include "support/assert.h"

namespace findep::diversity {
namespace {

config::ConfigurationId id_of(int i) {
  return crypto::Sha256{}
      .update("test-config")
      .update_u64(static_cast<std::uint64_t>(i))
      .finish();
}

TEST(Distribution, EmptyBasics) {
  ConfigDistribution dist;
  EXPECT_EQ(dist.support_size(), 0u);
  EXPECT_DOUBLE_EQ(dist.total_power(), 0.0);
  EXPECT_EQ(dist.total_abundance(), 0u);
  EXPECT_THROW((void)dist.shares(), support::ContractViolation);
}

TEST(Distribution, AddAccumulatesSameConfiguration) {
  ConfigDistribution dist;
  dist.add(id_of(1), 2.0, 1);
  dist.add(id_of(1), 3.0, 2);
  EXPECT_EQ(dist.support_size(), 1u);
  EXPECT_DOUBLE_EQ(dist.power_of(id_of(1)), 5.0);
  EXPECT_EQ(dist.abundance_of(id_of(1)), 3u);
  EXPECT_DOUBLE_EQ(dist.total_power(), 5.0);
}

TEST(Distribution, RejectsNegativePower) {
  ConfigDistribution dist;
  EXPECT_THROW(dist.add(id_of(1), -1.0), support::ContractViolation);
}

TEST(Distribution, SharesNormalizeAndSkipZeros) {
  ConfigDistribution dist;
  dist.add(id_of(1), 3.0);
  dist.add(id_of(2), 0.0);
  dist.add(id_of(3), 1.0);
  const auto shares = dist.shares();
  ASSERT_EQ(shares.size(), 2u);  // zero entry skipped
  EXPECT_DOUBLE_EQ(shares[0], 0.75);
  EXPECT_DOUBLE_EQ(shares[1], 0.25);
  EXPECT_EQ(dist.support_size(), 2u);
}

TEST(Distribution, ShareOfAndContains) {
  ConfigDistribution dist;
  dist.add(id_of(1), 1.0);
  dist.add(id_of(2), 3.0);
  EXPECT_TRUE(dist.contains(id_of(1)));
  EXPECT_FALSE(dist.contains(id_of(9)));
  EXPECT_DOUBLE_EQ(dist.share_of(id_of(2)), 0.75);
  EXPECT_DOUBLE_EQ(dist.share_of(id_of(9)), 0.0);
}

TEST(Distribution, FromShares) {
  const std::vector<double> shares = {0.5, 0.3, 0.2};
  const ConfigDistribution dist = ConfigDistribution::from_shares(shares);
  EXPECT_EQ(dist.support_size(), 3u);
  EXPECT_NEAR(dist.total_power(), 1.0, 1e-12);
  EXPECT_EQ(dist.entries()[1].abundance, 1u);
}

TEST(Distribution, UniformFactory) {
  const ConfigDistribution dist = ConfigDistribution::uniform(8, 3, 16.0);
  EXPECT_EQ(dist.support_size(), 8u);
  EXPECT_DOUBLE_EQ(dist.total_power(), 16.0);
  EXPECT_EQ(dist.total_abundance(), 24u);
  for (const auto& e : dist.entries()) {
    EXPECT_DOUBLE_EQ(e.power, 2.0);
    EXPECT_EQ(e.abundance, 3u);
  }
}

TEST(Distribution, UniformRejectsBadArgs) {
  EXPECT_THROW((void)ConfigDistribution::uniform(0), support::ContractViolation);
  EXPECT_THROW((void)ConfigDistribution::uniform(3, 0),
               support::ContractViolation);
  EXPECT_THROW((void)ConfigDistribution::uniform(3, 1, 0.0),
               support::ContractViolation);
}

TEST(Distribution, SortedByPowerDescending) {
  ConfigDistribution dist;
  dist.add(id_of(1), 1.0);
  dist.add(id_of(2), 5.0);
  dist.add(id_of(3), 3.0);
  const auto sorted = dist.sorted_by_power();
  EXPECT_DOUBLE_EQ(sorted[0].power, 5.0);
  EXPECT_DOUBLE_EQ(sorted[1].power, 3.0);
  EXPECT_DOUBLE_EQ(sorted[2].power, 1.0);
}

TEST(Distribution, ScaleAdjustsPowerAndAbundance) {
  ConfigDistribution dist;
  dist.add(id_of(1), 2.0, 2);
  dist.add(id_of(2), 2.0, 2);
  dist.scale(id_of(1), 3.0, 3);
  EXPECT_DOUBLE_EQ(dist.power_of(id_of(1)), 6.0);
  EXPECT_EQ(dist.abundance_of(id_of(1)), 6u);
  EXPECT_DOUBLE_EQ(dist.total_power(), 8.0);
  EXPECT_THROW(dist.scale(id_of(9), 2.0, 2), support::ContractViolation);
}

TEST(Distribution, NormalizedSumsToOne) {
  ConfigDistribution dist;
  dist.add(id_of(1), 4.0, 2);
  dist.add(id_of(2), 12.0, 5);
  const ConfigDistribution norm = dist.normalized();
  EXPECT_NEAR(norm.total_power(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(norm.share_of(id_of(2)), 0.75);
  EXPECT_EQ(norm.abundance_of(id_of(1)), 2u);  // abundance preserved
}

TEST(Distribution, EntriesKeepInsertionOrder) {
  ConfigDistribution dist;
  dist.add(id_of(5), 1.0);
  dist.add(id_of(3), 1.0);
  dist.add(id_of(4), 1.0);
  EXPECT_EQ(dist.entries()[0].id, id_of(5));
  EXPECT_EQ(dist.entries()[1].id, id_of(3));
  EXPECT_EQ(dist.entries()[2].id, id_of(4));
}

}  // namespace
}  // namespace findep::diversity
