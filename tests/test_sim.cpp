// Unit tests for the discrete-event simulation engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "support/assert.h"

namespace findep::sim {
namespace {

TEST(Simulator, StartsAtZeroWithNoEvents) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_FALSE(sim.has_pending());
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, FifoAmongEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_after(2.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), support::ContractViolation);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}),
               support::ContractViolation);
}

TEST(Simulator, RejectsNullCallback) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, nullptr), support::ContractViolation);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(sim.has_pending());
}

TEST(Simulator, CancelAfterExecutionReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(0));
  EXPECT_FALSE(sim.cancel(999));
}

TEST(Simulator, PendingCountTracksCancellations) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_count(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_count(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_count(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  EXPECT_EQ(sim.run_until(2.5), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(sim.has_pending());
  EXPECT_EQ(sim.run_until(10.0), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(42.0), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, RunWithEventBudget) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(static_cast<double>(i + 1), [&] { ++count; });
  }
  EXPECT_EQ(sim.run(2), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.run(), 3u);
}

TEST(Simulator, CascadingEventsRunToCompletion) {
  Simulator sim;
  int depth = 0;
  std::function<void()> cascade = [&] {
    if (++depth < 100) sim.schedule_after(0.001, cascade);
  };
  sim.schedule_after(0.0, cascade);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.executed_count(), 100u);
}

TEST(Simulator, ZeroDelaySelfScheduleAtSameTimestamp) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_after(0.0, [&] { order.push_back(2); });
  });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  // The nested zero-delay event runs after the already-queued peer.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, CancelFromInsideCallbackSkipsSameTimestampPeer) {
  Simulator sim;
  bool peer_ran = false;
  EventId peer = 0;
  sim.schedule_at(1.0, [&] { EXPECT_TRUE(sim.cancel(peer)); });
  peer = sim.schedule_at(1.0, [&] { peer_ran = true; });
  sim.run();
  EXPECT_FALSE(peer_ran);
  EXPECT_EQ(sim.executed_count(), 1u);
}

TEST(Simulator, RunUntilExecutesEventExactlyAtDeadline) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(2.0, [&] { ran = true; });
  EXPECT_EQ(sim.run_until(2.0), 1u);
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, CancelSurvivesRunUntilRequeue) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(5.0, [&] { ran = true; });
  sim.run_until(4.0);  // pops and requeues the 5.0 event
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed_count(), 0u);
}

TEST(Simulator, RunUntilRejectsPastDeadline) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(10.0), 0u);  // idle advance
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  // The clock is monotone: a deadline behind now() violates the
  // precondition rather than silently rewinding.
  EXPECT_THROW(sim.run_until(3.0), support::ContractViolation);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilKeepsTieOrderAcrossRequeue) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] { order.push_back(1); });
  sim.schedule_at(5.0, [&] { order.push_back(2); });
  sim.run_until(4.0);  // forces a pop + requeue of the 5.0 event
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace findep::sim
