// Checkpoint-anchored state transfer: un-stranding laggards after
// outages spanning multiple stable checkpoints, adversarial responders,
// view changes racing in-flight transfers, the checkpoint-vote watermark
// window, ReplicaOptions validation, and the regression pin that
// disabling the mechanism reproduces the historical stranding.
#include <gtest/gtest.h>

#include <set>

#include "bft/cluster.h"
#include "scenarios/bft_churn.h"
#include "support/assert.h"

namespace findep::bft {
namespace {

ClusterOptions churn_options(std::uint64_t seed = 1) {
  ClusterOptions opt;
  opt.network.min_latency = 0.005;
  opt.network.mean_extra_latency = 0.01;
  opt.replica.request_timeout = 0.8;
  opt.replica.view_change_timeout = 1.2;
  opt.replica.checkpoint_interval = 4;
  opt.replica.state_transfer_grace = 0.1;
  opt.replica.state_transfer_timeout = 0.5;
  opt.seed = seed;
  return opt;
}

/// Offered load at `rate` req/s until `until` (simulated seconds).
void offer_load(BftCluster& cluster, double rate, double until) {
  const int count = static_cast<int>(until * rate);
  for (int i = 0; i < count; ++i) {
    cluster.simulator().schedule_at(static_cast<double>(i) / rate,
                                    [&cluster] { (void)cluster.submit(); });
  }
}

/// Partition the given replicas away (each in its own group) at `from`,
/// heal everyone at `to`.
void schedule_outage(BftCluster& cluster, std::vector<net::NodeId> crashed,
                     double from, double to) {
  cluster.simulator().schedule_at(from, [&cluster, crashed] {
    std::uint32_t group = 1;
    for (const net::NodeId node : crashed) {
      cluster.network().set_partition_group(node, group++);
    }
  });
  cluster.simulator().schedule_at(
      to, [&cluster] { cluster.network().heal_partitions(); });
}

TEST(BftStateTransfer, LaggardRecoversAcrossMultiCheckpointOutage) {
  // Replica 3 crashes through [1, 7) while load keeps flowing; the live
  // quorum advances many stable checkpoints meanwhile (interval 4), so
  // the laggard's missed traffic is unrecoverable from live messages —
  // only state transfer can close the gap.
  ClusterOptions opt = churn_options(101);
  BftCluster cluster(4, opt);
  offer_load(cluster, 12.0, 9.0);
  schedule_outage(cluster, {3}, 1.0, 7.0);
  cluster.run_for(6.0);
  // Mid-outage sanity: the live side has moved more than two checkpoint
  // intervals past the laggard's horizon (the stranding precondition).
  EXPECT_GE(cluster.replica(0).stable_checkpoint(),
            cluster.replica(3).last_executed() + 2 * 4);
  cluster.run_for(14.0);
  EXPECT_EQ(cluster.stranded_replicas(), 0u);
  EXPECT_TRUE(cluster.logs_consistent());
  EXPECT_GE(cluster.replica(3).state_transfers_completed(), 1u);
  EXPECT_GT(cluster.replica(3).state_transfer_bytes(), 0u);
  // Bounded view changes: the laggard may time out a few times while
  // catching up, but there is no open-ended thrash.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LE(cluster.replica(i).view_changes_started(), 10u) << i;
  }
}

TEST(BftStateTransfer, DisabledStateTransferReproducesStranding) {
  // The identical schedule with state transfer off regression-pins the
  // historical behaviour: the laggard stays stranded below the stable
  // checkpoint and thrashes hopeless view changes.
  ClusterOptions opt = churn_options(101);
  opt.replica.enable_state_transfer = false;
  BftCluster cluster(4, opt);
  offer_load(cluster, 12.0, 9.0);
  schedule_outage(cluster, {3}, 1.0, 7.0);
  cluster.run_for(20.0);
  EXPECT_EQ(cluster.stranded_replicas(), 1u);
  EXPECT_LT(cluster.replica(3).last_executed(),
            cluster.replica(0).last_executed());
  EXPECT_EQ(cluster.replica(3).state_transfers_completed(), 0u);
  EXPECT_GT(cluster.replica(3).view_changes_started(), 5u);
  EXPECT_TRUE(cluster.logs_consistent());  // stranded, never inconsistent
}

TEST(BftStateTransfer, TwoLaggardsTwoCheckpointsBehindBothRecover) {
  // n = 7 tolerates f = 2: crash two replicas through an outage that
  // spans several stable checkpoints. Both must recover, and — the
  // checkpoint-adoption fix — the cluster must stabilize a *new*
  // checkpoint after the heal with the former laggards participating.
  ClusterOptions opt = churn_options(102);
  BftCluster cluster(7, opt);
  offer_load(cluster, 12.0, 10.0);
  schedule_outage(cluster, {5, 6}, 1.0, 7.5);
  cluster.run_for(6.0);
  const SeqNum mid_outage_stable = cluster.replica(0).stable_checkpoint();
  EXPECT_GE(mid_outage_stable, cluster.replica(5).last_executed() + 2 * 4);
  cluster.run_for(24.0);
  EXPECT_EQ(cluster.stranded_replicas(), 0u);
  EXPECT_TRUE(cluster.logs_consistent());
  for (const std::size_t laggard : {5u, 6u}) {
    EXPECT_GE(cluster.replica(laggard).state_transfers_completed(), 1u)
        << laggard;
  }
  // The next checkpoint quorum after the heal formed (no stall from
  // stale own-checkpoint re-broadcasts by the recovered laggards).
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_GT(cluster.replica(i).stable_checkpoint(), mid_outage_stable)
        << i;
  }
}

TEST(BftStateTransfer, ViewChangeRacesInFlightTransfer) {
  // The primary crashes at the same instant the laggard's outage heals:
  // the cluster runs a view change while the laggard's fetch is in
  // flight. The laggard must both catch up on execution *and* adopt the
  // new view (via the NEW-VIEW relayed in the state response or heard
  // live), then participate normally.
  ClusterOptions opt = churn_options(103);
  BftCluster cluster(7, opt);
  offer_load(cluster, 12.0, 10.0);
  schedule_outage(cluster, {6}, 1.0, 7.0);
  // Primary of view 0 drops off just as the laggard rejoins.
  cluster.simulator().schedule_at(7.0, [&cluster] {
    cluster.network().set_partition_group(0, 9);
  });
  cluster.run_for(40.0);
  // Replica 0 is gone from 7.0 on; convergence is over replicas 1..6.
  bool advanced = false;
  SeqNum horizon = 0;
  for (std::size_t i = 1; i < 7; ++i) {
    advanced |= cluster.replica(i).view() > 0;
    horizon = std::max(horizon, cluster.replica(i).last_executed());
  }
  EXPECT_TRUE(advanced);
  EXPECT_GT(cluster.replica(6).view(), 0u);  // the laggard followed
  EXPECT_EQ(cluster.replica(6).last_executed(), horizon);
  EXPECT_GE(cluster.replica(6).state_transfers_completed(), 1u);
  EXPECT_TRUE(cluster.logs_consistent());
}

TEST(BftStateTransfer, MaliciousResponderWrongDigestIsRejected) {
  // A malicious responder cannot forge the checkpoint proof (it would
  // need > 2/3 of signing weight), so its only move is a *real* stable
  // checkpoint with tampered entries. The requester must detect the
  // state-digest mismatch, reject wholesale, and still converge via an
  // honest responder.
  ClusterOptions opt = churn_options(104);
  BftCluster cluster(4, opt);
  offer_load(cluster, 12.0, 9.0);
  schedule_outage(cluster, {3}, 1.0, 7.0);
  cluster.run_for(6.5);  // mid-outage: checkpoints are stable, 3 lags

  // Craft the poison: replica 1's keys (derived exactly as the cluster
  // derives them) sign a response carrying the *real* stable checkpoint
  // and proof-quorum votes, but garbage entries.
  const SeqNum stable = cluster.replica(1).stable_checkpoint();
  ASSERT_GT(stable, cluster.replica(3).last_executed());
  const Checkpoint real_cp{stable, cluster.replica(1).stable_checkpoint_digest()};
  StateResponse poison;
  poison.request_from = cluster.replica(3).last_executed();
  poison.checkpoint = real_cp;
  for (ReplicaId r = 0; r < 3; ++r) {
    const crypto::KeyPair keys =
        crypto::KeyPair::derive(opt.seed * 1000003 + r);
    poison.proof.push_back(SignedCheckpoint{r, real_cp, keys.sign(real_cp.digest())});
  }
  for (SeqNum s = poison.request_from + 1; s <= stable; ++s) {
    poison.entries.push_back(
        ExecutedEntry{s, Request{90000 + s, crypto::sha256("tampered")}});
  }
  const crypto::KeyPair responder_keys =
      crypto::KeyPair::derive(opt.seed * 1000003 + 1);
  // Heal only the laggard's link and inject the poison immediately.
  cluster.simulator().schedule_at(7.0, [&cluster, &responder_keys, poison] {
    cluster.network().send(
        1, 3, net::Envelope(make_envelope(1, responder_keys, poison)),
        payload_wire_bytes(Payload{poison}));
  });
  cluster.run_for(13.5);

  EXPECT_GE(cluster.replica(3).state_transfers_rejected(), 1u);
  // ...and the honest path still won: fully converged, logs clean, no
  // tampered request ever executed.
  EXPECT_EQ(cluster.stranded_replicas(), 0u);
  EXPECT_TRUE(cluster.logs_consistent());
  for (const ExecutedEntry& e : cluster.replica(3).executed()) {
    EXPECT_LT(e.request.id, 90000u);
  }
}

TEST(BftStateTransfer, SingleFarFutureClaimDoesNotTriggerFetch) {
  // The watermark window drops far-future checkpoint votes from the
  // quorum map, and a lone claimant (< 1/3 weight) must not trigger
  // state transfer either — a Byzantine replica advertising a fantasy
  // horizon costs the cluster nothing.
  ClusterOptions opt = churn_options(105);
  BftCluster cluster(4, opt);
  const crypto::KeyPair liar_keys =
      crypto::KeyPair::derive(opt.seed * 1000003 + 2);
  for (int wave = 0; wave < 5; ++wave) {
    const Checkpoint fantasy{100000 + static_cast<SeqNum>(wave),
                             crypto::sha256("fantasy")};
    const net::Envelope env(make_envelope(2, liar_keys, fantasy));
    cluster.simulator().schedule_at(0.5 * wave, [&cluster, env] {
      for (net::NodeId to = 0; to < 4; ++to) {
        if (to != 2) cluster.network().send(2, to, env, 192);
      }
    });
  }
  offer_load(cluster, 10.0, 2.0);
  cluster.run_for(20.0);
  EXPECT_EQ(cluster.stranded_replicas(), 0u);
  EXPECT_TRUE(cluster.logs_consistent());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cluster.replica(i).state_transfer_requests(), 0u) << i;
    EXPECT_EQ(cluster.replica(i).state_transfers_completed(), 0u) << i;
  }
}

TEST(BftStateTransfer, SustainedLoadCausesNoSpuriousViewChanges) {
  // Regression for the request-timer reset: under sustained load the
  // pending set never fully drains, and the un-reset timer used to fire
  // a spurious view change every request_timeout even though every
  // request committed promptly. Progress must keep the timer quiet.
  ClusterOptions opt = churn_options(106);
  opt.replica.batch_size = 4;
  BftCluster cluster(10, opt);
  offer_load(cluster, 12.0, 6.0);
  cluster.run_for(10.0);
  EXPECT_EQ(cluster.completed_requests(), 72u);
  EXPECT_EQ(cluster.stranded_replicas(), 0u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(cluster.replica(i).view_changes_started(), 0u) << i;
    EXPECT_EQ(cluster.replica(i).view(), 0u) << i;
  }
}

TEST(BftStateTransfer, OptionsValidationFailsFast) {
  // batch_timeout >= request_timeout was a documented footgun (spurious
  // view changes); now it is a construction error, as is a zero
  // checkpoint interval.
  ClusterOptions bad_batch = churn_options(107);
  bad_batch.replica.batch_timeout = bad_batch.replica.request_timeout;
  EXPECT_THROW(BftCluster(4, bad_batch), support::ContractViolation);

  ClusterOptions bad_interval = churn_options(108);
  bad_interval.replica.checkpoint_interval = 0;
  EXPECT_THROW(BftCluster(4, bad_interval), support::ContractViolation);

  ClusterOptions bad_grace = churn_options(109);
  bad_grace.replica.state_transfer_grace = 0.0;
  EXPECT_THROW(BftCluster(4, bad_grace), support::ContractViolation);
}

TEST(BftStateTransfer, ChurnScenarioPinsBothDirections) {
  // Scenario-level acceptance, the same property CI gates: with state
  // transfer on, a just-under-1/3 crash through a multi-checkpoint
  // outage ends with zero stranded replicas; with it off, the identical
  // workload reproduces the stranding.
  using scenarios::BftChurnScenario;
  const auto run = [](bool transfer) {
    BftChurnScenario::Params params;
    params.n = 10;
    params.batch_size = 4;
    params.state_transfer = transfer;
    const BftChurnScenario scenario(params);
    return scenario.run(runtime::RunContext{.seed = 9, .run_index = 0});
  };
  const runtime::MetricRecord with = run(true);
  EXPECT_EQ(with.get("stranded_replicas"), 0.0);
  EXPECT_GT(with.get("recovery_time_s"), 0.0);
  EXPECT_GT(with.get("state_transfers"), 0.0);
  EXPECT_GT(with.get("state_transfer_bytes"), 0.0);
  EXPECT_LE(with.get("max_view_changes"), 10.0);

  const runtime::MetricRecord without = run(false);
  EXPECT_EQ(without.get("stranded_replicas"), 3.0);  // floor(10 * 0.3)
  EXPECT_EQ(without.get("recovery_time_s"), -1.0);
  EXPECT_EQ(without.get("state_transfers"), 0.0);
}

}  // namespace
}  // namespace findep::bft
