// Stake registry, delegation, VRF sortition, diversity-aware committees.
#include <gtest/gtest.h>

#include <cmath>

#include "committee/diversity_aware.h"
#include "committee/sortition.h"
#include "committee/stake.h"
#include "config/sampler.h"
#include "diversity/metrics.h"
#include "support/assert.h"

namespace findep::committee {
namespace {

struct Fixture {
  crypto::KeyRegistry crypto_registry;
  StakeRegistry stake;
  std::vector<crypto::KeyPair> keys;
  config::ComponentCatalog catalog = config::standard_catalog();

  void add_participants(std::size_t n, double stake_each = 1.0,
                        bool attested = true) {
    config::ConfigurationSampler sampler(catalog,
                                         config::SamplerOptions{});
    const auto configs = sampler.distinct_configurations(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys.push_back(crypto::KeyPair::derive(1000 + keys.size()));
      crypto_registry.enroll(keys.back());
      stake.add("p" + std::to_string(stake.size()), stake_each, configs[i],
                attested, keys.back().public_key());
    }
  }
};

TEST(Stake, AddAndTotals) {
  Fixture f;
  f.add_participants(4, 2.5);
  EXPECT_EQ(f.stake.size(), 4u);
  EXPECT_DOUBLE_EQ(f.stake.total_stake(), 10.0);
  EXPECT_DOUBLE_EQ(f.stake.effective_stake(0), 2.5);
}

TEST(Stake, DelegationMovesControl) {
  Fixture f;
  f.add_participants(3);
  f.stake.delegate(1, 0);
  EXPECT_DOUBLE_EQ(f.stake.effective_stake(0), 2.0);
  EXPECT_DOUBLE_EQ(f.stake.effective_stake(1), 0.0);
  // Undelegate restores.
  f.stake.delegate(1, std::nullopt);
  EXPECT_DOUBLE_EQ(f.stake.effective_stake(0), 1.0);
  EXPECT_DOUBLE_EQ(f.stake.effective_stake(1), 1.0);
}

TEST(Stake, DelegationChainsRejected) {
  Fixture f;
  f.add_participants(3);
  f.stake.delegate(1, 0);
  // The custodian (0) cannot delegate away.
  EXPECT_THROW(f.stake.delegate(0, 2), support::ContractViolation);
  // Nobody can delegate to a delegator.
  EXPECT_THROW(f.stake.delegate(2, 1), support::ContractViolation);
  EXPECT_THROW(f.stake.delegate(2, 2), support::ContractViolation);
}

TEST(Stake, EffectivePopulationCollapsesDelegates) {
  // §III-A: delegation to an exchange collapses diversity — the
  // custodian's configuration represents everyone's stake.
  Fixture f;
  f.add_participants(5);
  f.stake.delegate(1, 0);
  f.stake.delegate(2, 0);
  const auto population = f.stake.effective_population();
  EXPECT_EQ(population.size(), 3u);  // 0 (custodian), 3, 4
  double custodian_power = 0.0;
  for (const auto& rec : population) {
    custodian_power = std::max(custodian_power, rec.power);
  }
  EXPECT_DOUBLE_EQ(custodian_power, 3.0);
  // Entropy drops relative to no delegation.
  const double h_delegated = diversity::shannon_entropy(
      diversity::DiversityAnalyzer::distribution_of(population));
  EXPECT_LT(h_delegated, std::log2(5.0));
}

TEST(Sortition, ExpectedCommitteeSize) {
  Fixture f;
  f.add_participants(60);
  Sortition sortition(f.stake, 12.0);
  std::size_t total_seats = 0;
  constexpr std::uint64_t kRounds = 150;
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    total_seats += sortition.select(round, f.keys).seats.size();
  }
  const double mean =
      static_cast<double>(total_seats) / static_cast<double>(kRounds);
  EXPECT_NEAR(mean, 12.0, 1.2);
}

TEST(Sortition, StakeProportionalSelection) {
  Fixture f;
  f.add_participants(2, 1.0);
  // Third participant holds 8x the stake.
  config::ConfigurationSampler sampler(f.catalog,
                                       config::SamplerOptions{});
  f.keys.push_back(crypto::KeyPair::derive(5000));
  f.crypto_registry.enroll(f.keys.back());
  f.stake.add("whale", 8.0, sampler.distinct_configurations(3)[2], true,
              f.keys.back().public_key());

  Sortition sortition(f.stake, 1.0);
  EXPECT_NEAR(sortition.selection_probability(2), 0.8, 1e-12);
  std::size_t whale = 0, small = 0;
  for (std::uint64_t round = 0; round < 400; ++round) {
    for (const auto& seat : sortition.select(round, f.keys).seats) {
      (seat.participant == 2 ? whale : small) += 1;
    }
  }
  EXPECT_GT(whale, small * 3);
}

TEST(Sortition, TicketsVerify) {
  Fixture f;
  f.add_participants(20);
  Sortition sortition(f.stake, 8.0);
  const SortitionResult result = sortition.select(3, f.keys);
  ASSERT_FALSE(result.seats.empty());
  for (const auto& seat : result.seats) {
    EXPECT_TRUE(sortition.verify(f.crypto_registry, 3, seat));
    // Same ticket fails for a different round.
    EXPECT_FALSE(sortition.verify(f.crypto_registry, 4, seat));
  }
}

TEST(Sortition, ForgedTicketRejected) {
  Fixture f;
  f.add_participants(8);
  Sortition sortition(f.stake, 8.0);  // everyone selected (p = 1)
  const SortitionResult result = sortition.select(0, f.keys);
  ASSERT_FALSE(result.seats.empty());
  SortitionTicket forged = result.seats[0];
  forged.participant = (forged.participant + 1) % 8;  // claim another seat
  EXPECT_FALSE(sortition.verify(f.crypto_registry, 0, forged));
}

TEST(Sortition, DelegatedStakeCannotWinSeats) {
  Fixture f;
  f.add_participants(4);
  f.stake.delegate(1, 0);
  Sortition sortition(f.stake, 4.0);
  for (std::uint64_t round = 0; round < 50; ++round) {
    for (const auto& seat : sortition.select(round, f.keys).seats) {
      EXPECT_NE(seat.participant, 1u);
    }
  }
}

TEST(Committee, UnconstrainedAdmitsEverything) {
  Fixture f;
  f.add_participants(6);
  std::vector<ParticipantId> all = {0, 1, 2, 3, 4, 5};
  const Committee c = form_committee(f.stake, all, SelectionPolicy{});
  EXPECT_EQ(c.members.size(), 6u);
  EXPECT_NEAR(c.admitted_fraction, 1.0, 1e-12);
  EXPECT_NEAR(c.entropy_bits, std::log2(6.0), 1e-9);
}

TEST(Committee, CapLimitsDominantConfiguration) {
  Fixture f;
  f.add_participants(4, 1.0);
  // A whale sharing participant 0's configuration.
  f.keys.push_back(crypto::KeyPair::derive(6000));
  f.crypto_registry.enroll(f.keys.back());
  f.stake.add("whale", 10.0, f.stake.get(0).configuration, true,
              f.keys.back().public_key());

  std::vector<ParticipantId> all = {0, 1, 2, 3, 4};
  SelectionPolicy cap;
  cap.per_config_cap = 0.30;
  const Committee c = form_committee(f.stake, all, cap);
  // The whale's configuration is clipped to ≤ 30% of committee power.
  const double share =
      diversity::berger_parker(c.distribution);
  EXPECT_LE(share, 0.30 + 1e-9);
  EXPECT_LT(c.admitted_fraction, 1.0);
  EXPECT_FALSE(c.bft.single_point_of_failure);
}

TEST(Committee, AttestedOnlyFiltersTierTwo) {
  Fixture f;
  f.add_participants(3, 1.0, true);
  f.add_participants(3, 1.0, false);
  std::vector<ParticipantId> all = {0, 1, 2, 3, 4, 5};
  SelectionPolicy policy;
  policy.attested_only = true;
  const Committee c = form_committee(f.stake, all, policy);
  EXPECT_EQ(c.members.size(), 3u);
  for (const auto& m : c.members) {
    EXPECT_TRUE(f.stake.get(m.participant).attested);
  }
}

TEST(Committee, AttestedWeightBoostsTierOne) {
  Fixture f;
  f.add_participants(2, 1.0, true);
  f.add_participants(2, 1.0, false);
  std::vector<ParticipantId> all = {0, 1, 2, 3};
  SelectionPolicy policy;
  policy.attested_weight = 3.0;
  const Committee c = form_committee(f.stake, all, policy);
  double attested_power = 0.0, total = 0.0;
  for (const auto& m : c.members) {
    total += m.weight;
    if (f.stake.get(m.participant).attested) attested_power += m.weight;
  }
  EXPECT_NEAR(attested_power / total, 0.75, 1e-9);
}

TEST(Committee, EmptyCandidateListYieldsEmptyCommittee) {
  Fixture f;
  f.add_participants(2);
  const Committee c = form_committee(f.stake, {}, SelectionPolicy{});
  EXPECT_TRUE(c.members.empty());
  EXPECT_DOUBLE_EQ(c.total_weight, 0.0);
}

TEST(Committee, RejectsInvalidPolicy) {
  Fixture f;
  f.add_participants(2);
  SelectionPolicy bad_cap;
  bad_cap.per_config_cap = 0.0;
  EXPECT_THROW((void)form_committee(f.stake, {0}, bad_cap),
               support::ContractViolation);
  SelectionPolicy bad_weight;
  bad_weight.attested_weight = 0.5;
  EXPECT_THROW((void)form_committee(f.stake, {0}, bad_weight),
               support::ContractViolation);
}

}  // namespace
}  // namespace findep::committee
