// Typed envelopes: dispatch, the shared-body broadcast contract, traffic
// accounting, and the attestation wire protocol over the network.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "attest/authority.h"
#include "attest/registry.h"
#include "attest/service.h"
#include "config/sampler.h"
#include "net/envelope.h"
#include "net/gossip.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace findep::net {
namespace {

NetworkOptions fast_network() {
  NetworkOptions opt;
  opt.min_latency = 0.01;
  opt.mean_extra_latency = 0.01;
  return opt;
}

TEST(Envelope, EmptyReadsAsMonostate) {
  Envelope envelope;
  EXPECT_TRUE(envelope.empty());
  EXPECT_EQ(envelope.get<Probe>(), nullptr);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(envelope.body()));
  EXPECT_STREQ(family_name(envelope), "empty");
  EXPECT_EQ(envelope.body_use_count(), 0);
}

TEST(Envelope, TypedAccessAndVisit) {
  const Envelope envelope(Probe{7, "hi"});
  ASSERT_NE(envelope.get<Probe>(), nullptr);
  EXPECT_EQ(envelope.get<Probe>()->value, 7);
  EXPECT_EQ(envelope.get<GossipItem>(), nullptr);
  EXPECT_STREQ(family_name(envelope), "probe");
  const bool saw_probe = envelope.visit([](const auto& body) {
    return std::is_same_v<std::decay_t<decltype(body)>, Probe>;
  });
  EXPECT_TRUE(saw_probe);
}

TEST(Envelope, CopiesShareOneBody) {
  const Envelope a(Probe{1, {}});
  EXPECT_EQ(a.body_use_count(), 1);
  const Envelope b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(a.body_use_count(), 2);
  EXPECT_EQ(a.get<Probe>(), b.get<Probe>());  // same object, not a copy
}

// The tentpole contract: broadcast() schedules one delivery per
// recipient but never deep-copies the payload — every pending delivery
// aliases the sender's body.
TEST(Envelope, BroadcastSharesOneBodyAcrossAllRecipients) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  int received = 0;
  const Probe* delivered_body = nullptr;
  for (NodeId n = 0; n < 5; ++n) {
    net.attach(n, [&](const Message& m) {
      ++received;
      delivered_body = m.envelope.get<Probe>();
    });
  }
  const Envelope envelope(Probe{42, "shared"});
  net.broadcast(0, envelope);
  // Sender's handle + one per scheduled delivery (4 recipients).
  EXPECT_EQ(envelope.body_use_count(), 5);
  sim.run();
  EXPECT_EQ(received, 4);
  EXPECT_EQ(envelope.body_use_count(), 1);  // deliveries released
  EXPECT_EQ(delivered_body, envelope.get<Probe>());
}

// Satellite contract: sharing the body must not change traffic
// accounting — a broadcast bills bytes exactly like the per-recipient
// send() loop it replaced.
TEST(Envelope, BroadcastBytesAccountingMatchesPerRecipientSends) {
  const auto run = [&](bool use_broadcast) {
    sim::Simulator sim;
    SimNetwork net(sim, fast_network());
    for (NodeId n = 0; n < 6; ++n) net.attach(n, [](const Message&) {});
    const Envelope envelope(Probe{1, {}});
    if (use_broadcast) {
      net.broadcast(2, envelope, 300);
    } else {
      for (NodeId to = 0; to < 6; ++to) {
        if (to != 2) net.send(2, to, envelope, 300);
      }
    }
    sim.run();
    return net.stats();
  };
  const TrafficStats broadcast = run(true);
  const TrafficStats loop = run(false);
  EXPECT_EQ(broadcast.messages_sent, 5u);
  EXPECT_EQ(broadcast.bytes_sent, 5u * 300u);
  EXPECT_EQ(broadcast.messages_sent, loop.messages_sent);
  EXPECT_EQ(broadcast.bytes_sent, loop.bytes_sent);
  EXPECT_EQ(broadcast.messages_delivered, loop.messages_delivered);
}

TEST(Envelope, GossipItemsCarryTypedBlocks) {
  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  std::vector<NodeId> nodes = {0, 1, 2, 3};
  std::size_t blocks_seen = 0;
  GossipOverlay overlay(net, nodes, 2, 5,
                        [&](NodeId, const GossipItem& item) {
                          if (item.block() != nullptr) ++blocks_seen;
                        });
  nakamoto::Block block;
  block.hash = crypto::sha256("blk");
  block.parent = nakamoto::genesis().hash;
  block.height = 1;
  GossipItem item;
  item.id = block.hash;
  item.content = block;
  overlay.publish(0, item);
  sim.run();
  EXPECT_EQ(blocks_seen, nodes.size());
}

TEST(AttestWire, EnrollmentOverNetworkAdmitsGenuinePlatforms) {
  support::Rng rng(11);
  crypto::KeyRegistry keys;
  attest::AttestationAuthority authority(keys, rng);
  attest::AttestationRegistry registry(keys, authority.root_key());
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{.zipf_exponent = 0.5,
                                      .attestable_fraction = 1.0});

  std::vector<attest::PlatformModule> platforms;
  for (int i = 0; i < 3; ++i) {
    const auto cfg = sampler.sample(rng);
    const auto hw = cfg.component(config::ComponentKind::kTrustedHardware);
    platforms.emplace_back(keys, rng, authority, *hw, cfg);
  }

  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  attest::RegistryService service(net, 99, registry);
  std::vector<std::unique_ptr<attest::EnrollmentClient>> clients;
  for (std::size_t i = 0; i < platforms.size(); ++i) {
    clients.push_back(std::make_unique<attest::EnrollmentClient>(
        net, static_cast<NodeId>(i), 99, platforms[i], 1.0));
    clients.back()->enroll();
  }
  sim.run();

  EXPECT_EQ(service.challenges_issued(), 3u);
  EXPECT_EQ(service.admitted(), 3u);
  EXPECT_EQ(service.rejected(), 0u);
  EXPECT_EQ(registry.size(), 3u);
  for (const auto& client : clients) {
    ASSERT_TRUE(client->decided());
    EXPECT_TRUE(client->admitted());
    EXPECT_GT(client->enrollment_latency(), 0.0);  // two round-trips
  }
}

TEST(AttestWire, RogueAuthorityIsRejectedOverNetwork) {
  support::Rng rng(12);
  crypto::KeyRegistry keys;
  attest::AttestationAuthority genuine(keys, rng);
  attest::AttestationAuthority rogue(keys, rng);
  attest::AttestationRegistry registry(keys, genuine.root_key());
  const config::ComponentCatalog catalog = config::standard_catalog();
  config::ConfigurationSampler sampler(
      catalog, config::SamplerOptions{.zipf_exponent = 0.5,
                                      .attestable_fraction = 1.0});
  const auto cfg = sampler.sample(rng);
  const auto hw = cfg.component(config::ComponentKind::kTrustedHardware);
  // Endorsed by the wrong root: the quote chain cannot verify.
  attest::PlatformModule impostor(keys, rng, rogue, *hw, cfg);

  sim::Simulator sim;
  SimNetwork net(sim, fast_network());
  attest::RegistryService service(net, 99, registry);
  attest::EnrollmentClient client(net, 0, 99, impostor, 1.0);
  client.enroll();
  sim.run();

  EXPECT_EQ(service.admitted(), 0u);
  EXPECT_EQ(service.rejected(), 1u);
  ASSERT_TRUE(client.decided());
  EXPECT_FALSE(client.admitted());
  EXPECT_EQ(registry.size(), 0u);
}

}  // namespace
}  // namespace findep::net
