#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace findep::lint {

namespace {

namespace fs = std::filesystem;

// --- tokens -----------------------------------------------------------------

struct Token {
  enum class Kind { Ident, Punct, Number, String, Char };
  Kind kind = Kind::Punct;
  std::string text;
  int line = 1;

  [[nodiscard]] bool is(const char* t) const {
    return kind != Kind::String && kind != Kind::Char && text == t;
  }
  [[nodiscard]] bool ident(const char* t) const {
    return kind == Kind::Ident && text == t;
  }
};

/// One `// findep-lint: allow(a, b) -- why` comment.
struct Suppression {
  std::vector<std::string> rules;
  std::string justification;
  int line = 0;
  bool used = false;
  bool malformed = false;  // missing justification / unparsable rule list
};

struct FileScan {
  std::string path;       // as handed to run_lint (used in findings)
  std::string norm;       // generic-format path for suffix matching
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<std::string> includes;  // as written in #include "..."
  /// Identifiers declared in this file with an unordered container type
  /// (members, locals, params, functions returning one).
  std::set<std::string> unordered_names;
};

bool suffix_match(const std::string& norm, const std::string& suffix) {
  if (suffix.size() > norm.size()) return norm == suffix;
  return norm.compare(norm.size() - suffix.size(), suffix.size(), suffix) ==
         0;
}

bool suffix_match_any(const std::string& norm,
                      const std::vector<std::string>& suffixes) {
  return std::any_of(suffixes.begin(), suffixes.end(),
                     [&](const std::string& s) {
                       return suffix_match(norm, s);
                     });
}

// --- the lexer --------------------------------------------------------------
// Produces identifier/punct/number/string tokens with line numbers;
// comments are consumed here (suppression comments parsed out),
// preprocessor lines are skipped except for #include "..." capture.

class Lexer {
 public:
  Lexer(const std::string& text, FileScan& out) : text_(text), out_(out) {}

  void run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        preprocessor_line();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && pos_ + 1 < text_.size()) {
        if (text_[pos_ + 1] == '/') {
          line_comment();
          continue;
        }
        if (text_[pos_ + 1] == '*') {
          block_comment();
          continue;
        }
      }
      if (c == '"' ) {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (c == 'R' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '"') {
        raw_string();
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        number();
        continue;
      }
      punct();
    }
  }

 private:
  void emit(Token::Kind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void preprocessor_line() {
    const int line = line_;
    std::string directive;
    // Consume to end of line, honoring backslash continuations.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') {
        pos_ += 2;
        ++line_;
        directive += ' ';
        continue;
      }
      if (c == '\n') break;
      directive += c;
      ++pos_;
    }
    // Capture #include "repo/relative.h" (angle includes are system
    // headers — irrelevant to the declaration harvest).
    const std::size_t inc = directive.find("include");
    if (inc != std::string::npos) {
      const std::size_t open = directive.find('"', inc);
      if (open != std::string::npos) {
        const std::size_t close = directive.find('"', open + 1);
        if (close != std::string::npos) {
          out_.includes.push_back(
              directive.substr(open + 1, close - open - 1));
        }
      }
    }
    (void)line;
  }

  void line_comment() {
    const int line = line_;
    std::string body;
    pos_ += 2;
    while (pos_ < text_.size() && text_[pos_] != '\n') body += text_[pos_++];
    maybe_suppression(body, line);
  }

  void block_comment() {
    const int line = line_;
    std::string body;
    pos_ += 2;
    while (pos_ + 1 < text_.size() &&
           !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
      if (text_[pos_] == '\n') ++line_;
      body += text_[pos_++];
    }
    pos_ = std::min(pos_ + 2, text_.size());
    maybe_suppression(body, line);
  }

  /// Parses `findep-lint: allow(rule[, rule...]) -- justification` out of
  /// a comment body. A recognizable attempt that is missing pieces is
  /// recorded as malformed so the bad-suppression meta-rule can fire.
  void maybe_suppression(const std::string& body, int line) {
    const std::size_t tag = body.find("findep-lint:");
    if (tag == std::string::npos) return;
    Suppression supp;
    supp.line = line;
    const std::size_t allow = body.find("allow(", tag);
    const std::size_t close =
        allow == std::string::npos ? std::string::npos
                                   : body.find(')', allow);
    if (close == std::string::npos) {
      supp.malformed = true;
      out_.suppressions.push_back(std::move(supp));
      return;
    }
    std::string rules = body.substr(allow + 6, close - allow - 6);
    std::string rule;
    std::istringstream stream(rules);
    while (std::getline(stream, rule, ',')) {
      const std::size_t b = rule.find_first_not_of(" \t");
      const std::size_t e = rule.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      supp.rules.push_back(rule.substr(b, e - b + 1));
    }
    if (supp.rules.empty()) supp.malformed = true;
    const std::size_t dash = body.find("--", close);
    if (dash == std::string::npos) {
      supp.malformed = true;
    } else {
      const std::size_t b = body.find_first_not_of(" \t", dash + 2);
      if (b == std::string::npos) {
        supp.malformed = true;
      } else {
        supp.justification = body.substr(b);
      }
    }
    out_.suppressions.push_back(std::move(supp));
  }

  void string_literal() {
    const int line = line_;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < text_.size()) ++pos_;
    emit(Token::Kind::String, "", line);
  }

  void char_literal() {
    const int line = line_;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '\'') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      ++pos_;
    }
    if (pos_ < text_.size()) ++pos_;
    emit(Token::Kind::Char, "", line);
  }

  void raw_string() {
    const int line = line_;
    pos_ += 2;  // R"
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(') delim += text_[pos_++];
    const std::string close = ")" + delim + "\"";
    const std::size_t end = text_.find(close, pos_);
    for (std::size_t i = pos_;
         i < (end == std::string::npos ? text_.size() : end); ++i) {
      if (text_[i] == '\n') ++line_;
    }
    pos_ = end == std::string::npos ? text_.size() : end + close.size();
    emit(Token::Kind::String, "", line);
  }

  void identifier() {
    const int line = line_;
    std::string word;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      word += text_[pos_++];
    }
    emit(Token::Kind::Ident, std::move(word), line);
  }

  void number() {
    const int line = line_;
    std::string digits;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '\'')) {
      digits += text_[pos_++];
    }
    emit(Token::Kind::Number, std::move(digits), line);
  }

  void punct() {
    const int line = line_;
    const char c = text_[pos_];
    // `::` and `->` matter to the rules (member access vs free call);
    // everything else — including `>`/`<`, deliberately never combined
    // into shifts so template-argument scans can count depth — is a
    // single character.
    if (c == ':' && pos_ + 1 < text_.size() && text_[pos_ + 1] == ':') {
      pos_ += 2;
      emit(Token::Kind::Punct, "::", line);
      return;
    }
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      pos_ += 2;
      emit(Token::Kind::Punct, "->", line);
      return;
    }
    ++pos_;
    emit(Token::Kind::Punct, std::string(1, c), line);
  }

  const std::string& text_;
  FileScan& out_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

// --- shared token helpers ---------------------------------------------------

const std::set<std::string>& unordered_container_names() {
  static const std::set<std::string> names = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return names;
}

const std::set<std::string>& assoc_container_names() {
  static const std::set<std::string> names = {
      "map",           "multimap",          "set",
      "multiset",      "unordered_map",     "unordered_set",
      "unordered_multimap", "unordered_multiset"};
  return names;
}

/// From tokens[i] == "<", returns the index one past the matching ">".
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].is("<")) ++depth;
    if (toks[i].is(">")) {
      if (--depth == 0) return i + 1;
    }
    if (toks[i].is(";")) break;  // runaway (shift operator confusion)
  }
  return i;
}

bool preceded_by_member_access(const std::vector<Token>& toks,
                               std::size_t i) {
  return i > 0 && (toks[i - 1].is(".") || toks[i - 1].is("->"));
}

/// True when tokens[i] is `name` reached through `foo::name` for a `foo`
/// other than std/chrono (i.e. a user-qualified name, not the std one).
bool user_qualified(const std::vector<Token>& toks, std::size_t i) {
  if (i < 2 || !toks[i - 1].is("::")) return false;
  const Token& owner = toks[i - 2];
  return owner.kind == Token::Kind::Ident && owner.text != "std" &&
         owner.text != "chrono";
}

// --- declaration harvest (pass A) -------------------------------------------

/// Collects `using X = ...unordered_map<...>...;` / typedef alias names —
/// global across the scan, so a header alias covers its users.
void harvest_aliases(const FileScan& scan, std::set<std::string>& aliases) {
  const std::vector<Token>& toks = scan.tokens;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!toks[i].ident("using") && !toks[i].ident("typedef")) continue;
    // using X = <tokens...> ;
    std::size_t j = i + 1;
    std::string name;
    if (toks[i].ident("using") && toks[j].kind == Token::Kind::Ident &&
        j + 1 < toks.size() && toks[j + 1].is("=")) {
      name = toks[j].text;
      j += 2;
    }
    bool unordered = false;
    for (; j < toks.size() && !toks[j].is(";"); ++j) {
      if (toks[j].kind == Token::Kind::Ident &&
          unordered_container_names().count(toks[j].text) != 0) {
        unordered = true;
      }
      if (toks[i].ident("typedef") && toks[j].kind == Token::Kind::Ident) {
        name = toks[j].text;  // typedef: the last identifier is the alias
      }
    }
    if (unordered && !name.empty()) aliases.insert(name);
    i = j;
  }
}

/// Records identifiers declared with an unordered container type (or a
/// known alias of one): members, locals, parameters, and functions
/// returning one — every name whose iteration order is address-dependent.
void harvest_unordered_names(FileScan& scan,
                             const std::set<std::string>& aliases) {
  const std::vector<Token>& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::Ident) continue;
    const bool container =
        unordered_container_names().count(toks[i].text) != 0;
    const bool alias = aliases.count(toks[i].text) != 0;
    if (!container && !alias) continue;
    std::size_t j = i + 1;
    if (container) {
      if (j >= toks.size() || !toks[j].is("<")) continue;  // bare mention
      j = skip_angles(toks, j);
    }
    // Skip cv/ref decoration between the type and the declared name.
    while (j < toks.size() &&
           (toks[j].is("&") || toks[j].ident("const") ||
            toks[j].is("::"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Token::Kind::Ident &&
        !toks[j].ident("const")) {
      scan.unordered_names.insert(toks[j].text);
    }
  }
}

// --- findings sink ----------------------------------------------------------

class Sink {
 public:
  Sink(FileScan& scan, std::vector<Finding>& findings)
      : scan_(scan), findings_(findings) {}

  void report(int line, const std::string& rule,
              const std::string& message) {
    for (Suppression& supp : scan_.suppressions) {
      if (supp.malformed) continue;
      if (supp.line != line && supp.line != line - 1) continue;
      if (std::find(supp.rules.begin(), supp.rules.end(), rule) ==
          supp.rules.end()) {
        continue;
      }
      supp.used = true;
      return;
    }
    // One report per (line, rule, message): a range-for over two
    // unordered names is one problem, not two.
    for (const Finding& f : findings_) {
      if (f.file == scan_.path && f.line == line && f.rule == rule &&
          f.message == message) {
        return;
      }
    }
    findings_.push_back(Finding{scan_.path, line, rule, message});
  }

 private:
  FileScan& scan_;
  std::vector<Finding>& findings_;
};

// --- rule: wall-clock -------------------------------------------------------

const std::set<std::string>& wall_clock_idents() {
  static const std::set<std::string> names = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "timespec_get",
      "localtime",     "gmtime",        "mktime",
      "ftime",         "clock"};
  return names;
}

void rule_wall_clock(const FileScan& scan, const Options& options,
                     Sink& sink) {
  if (suffix_match_any(scan.norm, options.wall_clock_allowlist)) return;
  const std::vector<Token>& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::Ident) continue;
    if (preceded_by_member_access(toks, i)) continue;  // sim.clock() etc.
    if (user_qualified(toks, i)) continue;
    if (wall_clock_idents().count(toks[i].text) != 0) {
      // `clock` only as a call — `steady_clock` & friends on any use.
      if (toks[i].text == "clock" &&
          (i + 1 >= toks.size() || !toks[i + 1].is("("))) {
        continue;
      }
      sink.report(toks[i].line, "wall-clock",
                  "'" + toks[i].text +
                      "' reads the wall clock; simulated time must come "
                      "from sim::Simulator (allowlist: measured-timing "
                      "scenarios only)");
      continue;
    }
    if (toks[i].text == "time" && i + 1 < toks.size() &&
        toks[i + 1].is("(")) {
      sink.report(toks[i].line, "wall-clock",
                  "'time()' reads the wall clock; simulated time must "
                  "come from sim::Simulator");
    }
  }
}

// --- rule: ambient-rng ------------------------------------------------------

void rule_ambient_rng(const FileScan& scan, Sink& sink) {
  static const std::set<std::string> call_names = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48"};
  static const std::set<std::string> engine_names = {
      "mt19937",      "mt19937_64",   "minstd_rand", "minstd_rand0",
      "default_random_engine", "ranlux24", "ranlux48", "knuth_b"};
  const std::vector<Token>& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::Ident) continue;
    if (preceded_by_member_access(toks, i)) continue;
    if (user_qualified(toks, i)) continue;
    if (toks[i].text == "random_device") {
      sink.report(toks[i].line, "ambient-rng",
                  "std::random_device draws entropy outside the seed "
                  "chain; derive randomness from the scenario/replica "
                  "seed instead");
      continue;
    }
    if (call_names.count(toks[i].text) != 0 && i + 1 < toks.size() &&
        toks[i + 1].is("(")) {
      sink.report(toks[i].line, "ambient-rng",
                  "'" + toks[i].text +
                      "()' is ambient global RNG; derive randomness from "
                      "the scenario/replica seed instead");
      continue;
    }
    if (engine_names.count(toks[i].text) != 0 && i + 1 < toks.size()) {
      // Default construction only: `mt19937 g;`, `mt19937()`, `mt19937{}`.
      // A seeded constructor or a reference/parameter use is the
      // sanctioned pattern.
      const Token& next = toks[i + 1];
      const bool empty_parens = next.is("(") && i + 2 < toks.size() &&
                                toks[i + 2].is(")");
      const bool empty_braces = next.is("{") && i + 2 < toks.size() &&
                                toks[i + 2].is("}");
      const bool bare_decl = next.kind == Token::Kind::Ident &&
                             i + 2 < toks.size() && toks[i + 2].is(";");
      if (empty_parens || empty_braces || bare_decl) {
        sink.report(toks[i].line, "ambient-rng",
                    "default-constructed std::" + toks[i].text +
                        " uses the fixed default seed path; seed it "
                        "explicitly from the scenario/replica seed");
      }
    }
  }
}

// --- rule: unordered-iteration ----------------------------------------------

void rule_unordered_iteration(const FileScan& scan,
                              const std::set<std::string>& visible_names,
                              Sink& sink) {
  const std::vector<Token>& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression mentions an unordered name.
    if (toks[i].ident("for") && i + 1 < toks.size() &&
        toks[i + 1].is("(")) {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].is("(")) ++depth;
        if (toks[j].is(")")) {
          if (--depth == 0) {
            close = j;
            break;
          }
        }
        if (toks[j].is(":") && depth == 1 && colon == 0) colon = j;
      }
      if (colon != 0 && close != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (toks[j].kind == Token::Kind::Ident &&
              visible_names.count(toks[j].text) != 0) {
            sink.report(toks[i].line, "unordered-iteration",
                        "range-for over unordered container '" +
                            toks[j].text +
                            "': iteration order is address-dependent; "
                            "use an ordered container or sort before "
                            "consuming");
            break;
          }
        }
      }
      continue;
    }
    // Iterator-style access: name.begin() / name->cbegin() / ...
    if (toks[i].kind == Token::Kind::Ident &&
        visible_names.count(toks[i].text) != 0 && i + 3 < toks.size() &&
        (toks[i + 1].is(".") || toks[i + 1].is("->")) &&
        (toks[i + 2].ident("begin") || toks[i + 2].ident("cbegin") ||
         toks[i + 2].ident("rbegin")) &&
        toks[i + 3].is("(")) {
      sink.report(toks[i].line, "unordered-iteration",
                  "iterator walk of unordered container '" + toks[i].text +
                      "': iteration order is address-dependent; use an "
                      "ordered container or sort before consuming");
    }
  }
}

// --- rule: pointer-keyed-container ------------------------------------------

void rule_pointer_keyed(const FileScan& scan, Sink& sink) {
  const std::vector<Token>& toks = scan.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::Ident) continue;
    if (assoc_container_names().count(toks[i].text) == 0) continue;
    if (preceded_by_member_access(toks, i)) continue;  // params.set(...)
    if (!toks[i + 1].is("<")) continue;
    // Scan the first template argument (the key type).
    int depth = 0;
    bool pointer = false;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].is("<")) ++depth;
      if (toks[j].is(">")) {
        if (--depth == 0) break;
      }
      if (toks[j].is(",") && depth == 1) break;
      if (toks[j].is("*")) pointer = true;
      if (toks[j].is(";")) break;
    }
    if (pointer) {
      sink.report(toks[i].line, "pointer-keyed-container",
                  "std::" + toks[i].text +
                      " keyed on a raw pointer: ordering/hashing follows "
                      "allocation addresses, which change per run; key on "
                      "a stable id instead");
    }
  }
}

// --- rule: uninit-member ----------------------------------------------------

const std::set<std::string>& builtin_scalar_names() {
  static const std::set<std::string> names = {
      "bool",          "char",      "wchar_t",   "char8_t",  "char16_t",
      "char32_t",      "short",     "int",       "long",     "float",
      "double",        "size_t",    "ptrdiff_t", "int8_t",   "int16_t",
      "int32_t",       "int64_t",   "uint8_t",   "uint16_t", "uint32_t",
      "uint64_t",      "intptr_t",  "uintptr_t", "unsigned", "signed"};
  return names;
}

/// Walks one struct/class body (tokens[i] == "{") checking scalar members
/// for default initializers; recurses into nested types. Returns the
/// index one past the body's closing brace.
std::size_t check_struct_body(const FileScan& scan,
                              const std::vector<Token>& toks, std::size_t i,
                              const std::set<std::string>& scalars,
                              const std::string& type_name, Sink& sink);

/// From tokens[i] == "struct"/"class", checks the type if it has a body;
/// returns the index to resume from.
std::size_t check_type_decl(const FileScan& scan,
                            const std::vector<Token>& toks, std::size_t i,
                            const std::set<std::string>& scalars,
                            Sink& sink) {
  std::size_t j = i + 1;
  std::string name = "<anonymous>";
  if (j < toks.size() && toks[j].kind == Token::Kind::Ident) {
    name = toks[j].text;
    ++j;
  }
  // Scan past `final` and any base clause to the opening brace; a `;`
  // first means a forward declaration.
  for (; j < toks.size(); ++j) {
    if (toks[j].is(";")) return j + 1;
    if (toks[j].is("<")) j = skip_angles(toks, j) - 1;  // Base<T> clause
    if (toks[j].is("{")) {
      return check_struct_body(scan, toks, j, scalars, name, sink);
    }
  }
  return j;
}

std::size_t check_struct_body(const FileScan& scan,
                              const std::vector<Token>& toks, std::size_t i,
                              const std::set<std::string>& scalars,
                              const std::string& type_name, Sink& sink) {
  ++i;  // past '{'
  while (i < toks.size()) {
    const Token& tok = toks[i];
    if (tok.is("}")) return i + 1;
    // Access specifiers.
    if ((tok.ident("public") || tok.ident("private") ||
         tok.ident("protected")) &&
        i + 1 < toks.size() && toks[i + 1].is(":")) {
      i += 2;
      continue;
    }
    if (tok.ident("struct") || tok.ident("class")) {
      i = check_type_decl(scan, toks, i, scalars, sink);
      continue;
    }
    if (tok.ident("template") && i + 1 < toks.size() &&
        toks[i + 1].is("<")) {
      i = skip_angles(toks, i + 1);
      continue;
    }
    if (tok.ident("enum")) {  // enum members are a different rule's job
      while (i < toks.size() && !toks[i].is("{") && !toks[i].is(";")) ++i;
      if (i < toks.size() && toks[i].is("{")) {
        int depth = 0;
        for (; i < toks.size(); ++i) {
          if (toks[i].is("{")) ++depth;
          if (toks[i].is("}") && --depth == 0) {
            ++i;
            break;
          }
        }
      }
      if (i < toks.size() && toks[i].is(";")) ++i;
      continue;
    }
    // One member/function statement.
    const int line = tok.line;
    bool has_paren = false;
    bool has_init = false;
    bool skip_statement = tok.ident("using") || tok.ident("typedef") ||
                          tok.ident("static") || tok.ident("friend") ||
                          tok.ident("operator");
    std::vector<std::string> idents;
    int paren_depth = 0;
    for (; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.is("(")) {
        ++paren_depth;
        has_paren = true;
      }
      if (t.is(")")) --paren_depth;
      if (t.is("=") && paren_depth == 0) has_init = true;
      if (t.is("<") && paren_depth == 0 && !has_init) {
        i = skip_angles(toks, i) - 1;  // template args in the type
        skip_statement = true;  // templated type — not a scalar member
        continue;
      }
      if (t.is("{") && paren_depth == 0) {
        if (has_paren) {
          // Function body: skip it; no trailing ';' required.
          int depth = 0;
          for (; i < toks.size(); ++i) {
            if (toks[i].is("{")) ++depth;
            if (toks[i].is("}") && --depth == 0) {
              ++i;
              break;
            }
          }
          if (i < toks.size() && toks[i].is(";")) ++i;
          has_paren = true;
          skip_statement = true;
          break;
        }
        // Brace initializer: `crypto::Digest d{};` — initialized.
        has_init = true;
        int depth = 0;
        for (; i < toks.size(); ++i) {
          if (toks[i].is("{")) ++depth;
          if (toks[i].is("}") && --depth == 0) break;
        }
        continue;
      }
      if (t.is(";") && paren_depth == 0) {
        ++i;
        break;
      }
      if (t.is(":") && paren_depth == 0) skip_statement = true;  // bitfield
      if (t.kind == Token::Kind::Ident) idents.push_back(t.text);
    }
    if (skip_statement || has_paren || has_init || idents.size() < 2) {
      continue;
    }
    // `idents` = type tokens + the member name last. Scalar iff every
    // type identifier is a builtin scalar, a configured alias, or a
    // qualifier (std/const/...).
    static const std::set<std::string> ignorable = {
        "std", "const", "constexpr", "mutable", "volatile", "inline"};
    bool scalar_seen = false;
    bool all_scalar = true;
    for (std::size_t k = 0; k + 1 < idents.size(); ++k) {
      if (ignorable.count(idents[k]) != 0) continue;
      if (builtin_scalar_names().count(idents[k]) != 0 ||
          scalars.count(idents[k]) != 0) {
        scalar_seen = true;
      } else {
        all_scalar = false;
      }
    }
    if (scalar_seen && all_scalar) {
      sink.report(line, "uninit-member",
                  "scalar member '" + idents.back() + "' of wire struct " +
                      type_name +
                      " has no default initializer: a serialization "
                      "round-trip reads indeterminate bytes");
    }
  }
  return i;
}

void rule_uninit_member(const FileScan& scan, const Options& options,
                        Sink& sink) {
  if (!suffix_match_any(scan.norm, options.uninit_member_files)) return;
  std::set<std::string> scalars(options.scalar_aliases.begin(),
                                options.scalar_aliases.end());
  const std::vector<Token>& toks = scan.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].ident("struct") || toks[i].ident("class")) {
      i = check_type_decl(scan, toks, i, scalars, sink) - 1;
    }
  }
}

// --- include closure --------------------------------------------------------

/// Resolves `#include "x"` paths to scan indices so a .cpp sees the
/// unordered names its repo headers declare (one transitive closure,
/// cycle-safe).
std::vector<std::set<std::string>> build_visible_names(
    const std::vector<FileScan>& scans) {
  std::map<std::string, std::size_t> by_suffix;
  for (std::size_t i = 0; i < scans.size(); ++i) {
    by_suffix[scans[i].norm] = i;
  }
  auto resolve = [&](const FileScan& from,
                     const std::string& inc) -> std::ptrdiff_t {
    const std::string dir =
        fs::path(from.norm).parent_path().generic_string();
    for (const std::string& candidate :
         {"src/" + inc, inc, dir.empty() ? inc : dir + "/" + inc}) {
      for (const auto& [norm, idx] : by_suffix) {
        if (suffix_match(norm, candidate)) return
            static_cast<std::ptrdiff_t>(idx);
      }
    }
    return -1;
  };

  std::vector<std::vector<std::size_t>> edges(scans.size());
  for (std::size_t i = 0; i < scans.size(); ++i) {
    for (const std::string& inc : scans[i].includes) {
      const std::ptrdiff_t j = resolve(scans[i], inc);
      if (j >= 0) edges[i].push_back(static_cast<std::size_t>(j));
    }
  }

  std::vector<std::set<std::string>> visible(scans.size());
  for (std::size_t i = 0; i < scans.size(); ++i) {
    std::vector<std::size_t> stack = {i};
    std::set<std::size_t> seen = {i};
    while (!stack.empty()) {
      const std::size_t j = stack.back();
      stack.pop_back();
      visible[i].insert(scans[j].unordered_names.begin(),
                        scans[j].unordered_names.end());
      for (const std::size_t k : edges[j]) {
        if (seen.insert(k).second) stack.push_back(k);
      }
    }
  }
  return visible;
}

}  // namespace

// --- public interface -------------------------------------------------------

std::vector<RuleInfo> rule_catalog() {
  return {
      {"wall-clock",
       "chrono clocks / time() / gettimeofday outside the measured-timing "
       "allowlist"},
      {"ambient-rng",
       "rand(), std::random_device, default-constructed std engines — "
       "randomness outside the seed chain"},
      {"unordered-iteration",
       "range-for or .begin() walk of an unordered container — "
       "address-dependent order"},
      {"pointer-keyed-container",
       "map/set keyed on a raw pointer — address-dependent "
       "ordering/hashing"},
      {"uninit-member",
       "scalar wire-struct member without a default initializer"},
      {"bad-suppression",
       "findep-lint: allow(...) comment missing its rule list or '-- "
       "justification'"},
      {"unused-suppression",
       "allow(...) comment that suppressed nothing (stale exemption)"},
  };
}

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths, const Options& options) {
  auto excluded = [&](const std::string& p) {
    return std::any_of(options.exclude_substrings.begin(),
                       options.exclude_substrings.end(),
                       [&](const std::string& sub) {
                         return p.find(sub) != std::string::npos;
                       });
  };
  auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
  };
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    if (!fs::exists(path)) {
      throw std::runtime_error("no such file or directory: " + path);
    }
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (!entry.is_regular_file() || !is_source(entry.path())) continue;
        const std::string p = entry.path().generic_string();
        if (!excluded(p)) files.push_back(p);
      }
    } else if (!excluded(path)) {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<Finding> run_lint(const std::vector<std::string>& files,
                              const Options& options) {
  std::vector<Finding> findings;

  // Pass A: tokenize everything, harvest declarations.
  std::vector<FileScan> scans;
  scans.reserve(files.size());
  for (const std::string& file : files) {
    FileScan scan;
    scan.path = file;
    scan.norm = fs::path(file).generic_string();
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      findings.push_back(Finding{file, 0, "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    Lexer(text, scan).run();
    scans.push_back(std::move(scan));
  }

  std::set<std::string> aliases;
  for (const FileScan& scan : scans) harvest_aliases(scan, aliases);
  for (FileScan& scan : scans) harvest_unordered_names(scan, aliases);
  const std::vector<std::set<std::string>> visible =
      build_visible_names(scans);

  // Pass B: rules.
  const std::set<std::string> known_rules = [] {
    std::set<std::string> rules;
    for (const RuleInfo& info : rule_catalog()) rules.insert(info.name);
    return rules;
  }();
  for (std::size_t i = 0; i < scans.size(); ++i) {
    FileScan& scan = scans[i];
    Sink sink(scan, findings);
    rule_wall_clock(scan, options, sink);
    rule_ambient_rng(scan, sink);
    rule_unordered_iteration(scan, visible[i], sink);
    rule_pointer_keyed(scan, sink);
    rule_uninit_member(scan, options, sink);

    for (const Suppression& supp : scan.suppressions) {
      if (supp.malformed) {
        findings.push_back(Finding{
            scan.path, supp.line, "bad-suppression",
            "malformed suppression: expected 'findep-lint: "
            "allow(rule[, rule...]) -- justification'"});
        continue;
      }
      for (const std::string& rule : supp.rules) {
        if (known_rules.count(rule) == 0) {
          findings.push_back(Finding{
              scan.path, supp.line, "bad-suppression",
              "allow() names unknown rule '" + rule + "'"});
        }
      }
      if (!supp.used) {
        findings.push_back(Finding{
            scan.path, supp.line, "unused-suppression",
            "suppression for '" + supp.rules.front() +
                "' matched no finding on this or the next line; remove "
                "the stale exemption"});
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::string format_finding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": error: [" +
         finding.rule + "] " + finding.message;
}

}  // namespace findep::lint
