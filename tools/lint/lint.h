// findep-lint: a determinism/safety static-analysis pass over the repo's
// own sources.
//
// The repo's load-bearing guarantee — sweeps that render byte-identically
// across serial, thread-pool and distributed execution, and an event
// engine whose execution order is pinned — is enforced dynamically by CI
// `cmp` runs. Those tell you *that* determinism broke, never *which line*
// broke it. This pass rejects the known sources of nondeterminism (and a
// couple of serialization hazards) at review time, as named rules with
// file:line diagnostics, so the discipline is a checked property instead
// of a convention.
//
// Rules (see rule_catalog() for the one-line versions):
//
//   wall-clock          chrono clocks / time() / gettimeofday outside an
//                       explicit file allowlist. Simulated time comes from
//                       sim::Simulator; wall time in a scenario makes its
//                       metrics run-to-run unstable.
//   ambient-rng         rand(), std::random_device, default-constructed
//                       std engines. All randomness must flow from
//                       scenario/replica seeds or merges stop being
//                       byte-identical.
//   unordered-iteration range-for / .begin() iteration over identifiers
//                       declared as unordered_{map,set,...}. Iteration
//                       order is address-dependent — the #1 way to
//                       silently break merge byte-identity. Order-
//                       insensitive folds must say so in a suppression.
//   pointer-keyed-container
//                       map/set keyed on a raw pointer type: ordering and
//                       hashing follow allocation addresses, which differ
//                       per run.
//   uninit-member       scalar members of wire-message structs (bft
//                       messages, net envelope bodies) without a default
//                       initializer: a serialization round-trip reads
//                       indeterminate bytes.
//
// Meta-rules keep the suppression mechanism honest:
//
//   bad-suppression     an allow() comment missing its `-- justification`
//                       or naming no known rule.
//   unused-suppression  an allow() comment that suppressed nothing — a
//                       stale exemption that would mask a future
//                       violation.
//
// Suppression syntax, on the offending line or the line directly above:
//
//   // findep-lint: allow(rule-name) -- one-line justification
//   // findep-lint: allow(rule-a, rule-b) -- shared justification
//
// The tokenizer is hand-rolled over the raw bytes (comments, string
// literals and preprocessor lines handled; no libclang, no new
// dependencies — the same spirit as runtime/task.cpp's mini JSON reader).
// It is a lexer, not a parser: the rules are heuristics tuned to this
// repo's idiom, and the suppression mechanism is the escape hatch for the
// places where a heuristic over-fires on legitimate code.
#pragma once

#include <string>
#include <vector>

namespace findep::lint {

struct Finding {
  std::string file;   // path as given to the scan
  int line = 0;       // 1-based
  std::string rule;   // e.g. "unordered-iteration"
  std::string message;
};

struct RuleInfo {
  std::string name;
  std::string summary;
};

struct Options {
  /// Files in which the wall-clock rule is off entirely (path suffix
  /// match). The default covers the two measured-timing scenarios; every
  /// other file must route time through the simulator.
  std::vector<std::string> wall_clock_allowlist = {
      "src/scenarios/micro.cpp",
      "src/scenarios/process_counters.cpp",
  };

  /// Files whose struct/class scalar members must carry default
  /// initializers (path suffix match): the wire-message headers, where an
  /// uninitialized member is a serialization round-trip hazard.
  std::vector<std::string> uninit_member_files = {
      "src/bft/messages.h",
      "src/net/envelope.h",
      "src/attest/wire.h",
  };

  /// Type aliases treated as scalars by uninit-member, on top of the
  /// builtin integer/float types. The repo's wire headers use these for
  /// ids and sequence numbers.
  std::vector<std::string> scalar_aliases = {
      "ReplicaId", "View", "SeqNum", "NodeId", "MinerId", "PoolId",
  };

  /// Path substrings to skip while scanning (fixture files contain
  /// deliberate violations).
  std::vector<std::string> exclude_substrings = {
      "lint_fixtures",
  };
};

/// The rule catalog, in stable order (for --list-rules and the docs).
[[nodiscard]] std::vector<RuleInfo> rule_catalog();

/// Expands files/directories into a sorted list of C++ sources
/// (.h/.hpp/.cpp/.cc), applying Options::exclude_substrings. Throws
/// std::runtime_error on a nonexistent path.
[[nodiscard]] std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths, const Options& options);

/// Runs every rule over `files` (two passes: declaration harvest, then
/// rule matching). Findings come back sorted by (file, line, rule).
/// Unreadable files produce a finding under the pseudo-rule "io-error".
[[nodiscard]] std::vector<Finding> run_lint(
    const std::vector<std::string>& files, const Options& options);

/// Formats one finding as "file:line: error: [rule] message".
[[nodiscard]] std::string format_finding(const Finding& finding);

}  // namespace findep::lint
