// findep-lint CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
//   findep-lint [options] PATH...
//
// PATHs are files or directories (recursed for .h/.hpp/.cpp/.cc). The
// fixture-oriented options exist so tests/test_lint.cpp and ad-hoc runs
// can reconfigure the per-repo defaults; CI runs the defaults:
//
//   findep-lint src bench tests
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

void print_usage(std::ostream& out) {
  out << "usage: findep-lint [options] PATH...\n"
         "\n"
         "options:\n"
         "  --list-rules             print the rule catalog and exit\n"
         "  --wall-clock-allow S     add a wall-clock allowlist suffix\n"
         "  --no-default-allowlist   start from an empty wall-clock "
         "allowlist\n"
         "  --uninit-file S          add a uninit-member file suffix\n"
         "  --no-default-uninit      start from an empty uninit-member "
         "file list\n"
         "  --scalar-alias NAME      treat NAME as a scalar type alias\n"
         "  --exclude SUBSTR         skip paths containing SUBSTR\n"
         "  --max-findings N         stop printing after N findings "
         "(default: all)\n";
}

}  // namespace

int main(int argc, char** argv) {
  findep::lint::Options options;
  std::vector<std::string> paths;
  long max_findings = -1;

  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "error: " << argv[i] << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      print_usage(std::cout);
      return 0;
    }
    if (std::strcmp(arg, "--list-rules") == 0) {
      for (const auto& rule : findep::lint::rule_catalog()) {
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      }
      return 0;
    }
    if (std::strcmp(arg, "--wall-clock-allow") == 0) {
      options.wall_clock_allowlist.push_back(need_value(i));
      continue;
    }
    if (std::strcmp(arg, "--no-default-allowlist") == 0) {
      options.wall_clock_allowlist.clear();
      continue;
    }
    if (std::strcmp(arg, "--uninit-file") == 0) {
      options.uninit_member_files.push_back(need_value(i));
      continue;
    }
    if (std::strcmp(arg, "--no-default-uninit") == 0) {
      options.uninit_member_files.clear();
      continue;
    }
    if (std::strcmp(arg, "--scalar-alias") == 0) {
      options.scalar_aliases.push_back(need_value(i));
      continue;
    }
    if (std::strcmp(arg, "--exclude") == 0) {
      options.exclude_substrings.push_back(need_value(i));
      continue;
    }
    if (std::strcmp(arg, "--max-findings") == 0) {
      max_findings = std::stol(need_value(i));
      continue;
    }
    if (arg[0] == '-') {
      std::cerr << "error: unknown option '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
    paths.push_back(arg);
  }

  if (paths.empty()) {
    std::cerr << "error: no paths given\n";
    print_usage(std::cerr);
    return 2;
  }

  std::vector<std::string> files;
  try {
    files = findep::lint::collect_sources(paths, options);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }

  const std::vector<findep::lint::Finding> findings =
      findep::lint::run_lint(files, options);
  long printed = 0;
  for (const auto& finding : findings) {
    if (max_findings >= 0 && printed >= max_findings) {
      std::cout << "... (" << findings.size() - printed
                << " more suppressed by --max-findings)\n";
      break;
    }
    std::cout << findep::lint::format_finding(finding) << '\n';
    ++printed;
  }
  std::cerr << "findep-lint: " << files.size() << " file(s), "
            << findings.size() << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
